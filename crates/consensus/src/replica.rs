//! The PBFT replica state machine.

use crate::messages::{CommitCert, CommittedEntry, Outbound, PbftMsg};
use crate::payload::Payload;
use curb_crypto::sha256::{digest_parts, Digest};
use std::collections::{BTreeMap, BTreeSet};

/// Default cap on the entries served in one [`PbftMsg::StateResponse`]
/// (tunable per replica with [`Replica::set_max_state_chunk`]).
pub const DEFAULT_STATE_CHUNK: usize = 256;

/// Chains the running state digest over one delivered entry: the
/// digest of the committed prefix through `seq` is a hash chain over
/// `(prev_digest, seq, payload_digest)` in delivery order, so every
/// honest replica computes the identical digest for the identical
/// prefix without retaining the prefix itself.
pub fn chain_state_digest(prev: Digest, seq: Seq, payload_digest: Digest) -> Digest {
    digest_parts(&[
        b"curb-checkpoint",
        &prev.0,
        &seq.to_be_bytes(),
        &payload_digest.0,
    ])
}

/// A checkpoint that gathered a `2f + 1` attestation quorum: the
/// committed prefix through `seq` is *stable* — a quorum agrees on its
/// chained state digest — so the log below it may be pruned and served
/// to laggards as a snapshot instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableCheckpoint {
    /// Highest sequence number the checkpoint covers.
    pub seq: Seq,
    /// Chained state digest of the committed prefix through `seq`.
    pub state_digest: Digest,
    /// The replicas whose matching attestations made it stable.
    pub voters: Vec<ReplicaId>,
}

/// An in-progress checkpoint round: attestation votes per state digest
/// (a byzantine replica may attest garbage) plus the tracer timestamp
/// at which the round opened, bounding the `consensus.checkpoint` span.
#[derive(Debug, Clone)]
struct CheckpointRound {
    t_open: u64,
    votes: BTreeMap<Digest, BTreeSet<ReplicaId>>,
}

/// Index of a replica within its consensus group (`0..n`).
pub type ReplicaId = usize;
/// Sequence number of a consensus instance (first instance is 1).
pub type Seq = u64;
/// View number (view `v` is led by replica `v mod n`).
pub type View = u64;

/// Fault-injection behaviour of a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crash-like: never sends anything and ignores all input.
    Silent,
    /// Byzantine: votes (prepares/commits) carry a corrupted digest, so
    /// its votes never contribute to honest quorums.
    VoteGarbage,
    /// Byzantine state server: participates in consensus honestly but
    /// answers [`PbftMsg::StateRequest`] with corrupted commit
    /// certificates, so a rejoining replica that trusts it would apply
    /// unverifiable history. Used to prove catch-up verification and
    /// retry-against-another-peer work.
    StateGarbage,
}

/// Error returned by [`Replica::propose`] when the caller is not the
/// current leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeader {
    /// The replica that is the leader of the current view.
    pub leader: ReplicaId,
}

impl core::fmt::Display for NotLeader {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "only the leader (replica {}) may propose", self.leader)
    }
}

impl std::error::Error for NotLeader {}

/// Current tracer time, or 0 when tracing is off — phase timestamps
/// of 0 mean "not observed" and suppress span emission.
#[inline]
fn trace_now() -> u64 {
    if curb_telemetry::enabled() {
        curb_telemetry::now_nanos().max(1)
    } else {
        0
    }
}

/// Per-sequence consensus bookkeeping.
#[derive(Debug, Clone)]
struct Instance<P> {
    view: View,
    payload: Option<P>,
    digest: Option<Digest>,
    /// Votes per digest (byzantine replicas may vote for garbage).
    prepares: BTreeMap<Digest, BTreeSet<ReplicaId>>,
    commits: BTreeMap<Digest, BTreeSet<ReplicaId>>,
    sent_commit: bool,
    decided: bool,
    /// Phase-boundary timestamps in tracer nanos (0 = not reached or
    /// tracing off). Consecutive pairs bound the pre-prepare, prepare
    /// and commit phase spans, so per-phase durations sum exactly to
    /// the instance's end-to-end latency.
    t_open: u64,
    t_pre_prepare: u64,
    t_prepared: u64,
    t_decided: u64,
}

impl<P> Instance<P> {
    fn new(view: View) -> Self {
        Instance {
            view,
            payload: None,
            digest: None,
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            sent_commit: false,
            decided: false,
            t_open: trace_now(),
            t_pre_prepare: 0,
            t_prepared: 0,
            t_decided: 0,
        }
    }

    /// Stamps the pre-prepare boundary (first digest assignment) once.
    fn mark_pre_prepare(&mut self) {
        if self.t_pre_prepare == 0 {
            self.t_pre_prepare = trace_now();
        }
    }
}

/// A PBFT replica: a deterministic, sans-I/O state machine.
///
/// Feed it protocol messages with [`Replica::on_message`]; it returns
/// the messages it wants delivered. Decisions are queued and retrieved
/// in sequence order with [`Replica::take_decisions`].
///
/// The group has `n` replicas and tolerates `f = ⌊(n-1)/3⌋` byzantine
/// members. The leader of view `v` is replica `v mod n`.
#[derive(Debug, Clone)]
pub struct Replica<P> {
    id: ReplicaId,
    n: usize,
    f: usize,
    view: View,
    next_seq: Seq,
    next_deliver: Seq,
    instances: BTreeMap<Seq, Instance<P>>,
    ready: BTreeMap<Seq, P>,
    behavior: Behavior,
    /// `new_view -> voter -> carried prepared payloads`.
    view_change_votes: BTreeMap<View, BTreeMap<ReplicaId, Vec<(Seq, P)>>>,
    /// Highest view this replica has voted to change to.
    voted_view: View,
    /// The decision history with commit-certificate evidence: every
    /// `(seq, payload)` this replica decided (or applied from a
    /// verified state transfer), retained so it can serve catch-up
    /// requests from rejoining peers. With checkpointing enabled
    /// ([`Replica::set_checkpoint_interval`]) entries at or below the
    /// stable low-water mark are pruned — they are covered by the
    /// quorum-attested checkpoint and served via
    /// [`PbftMsg::SnapshotResponse`] instead — bounding steady-state
    /// memory to O(checkpoint interval). With checkpointing disabled
    /// (the default) nothing is pruned.
    committed_log: BTreeMap<Seq, (P, CommitCert)>,
    /// Cap on entries per outgoing `STATE-RESPONSE`.
    max_state_chunk: usize,
    /// State-transfer entries rejected by certificate verification.
    state_rejections: u64,
    /// State-transfer/snapshot-delta entries applied after
    /// verification.
    state_entries_applied: u64,
    /// Broadcast a [`PbftMsg::Checkpoint`] every this many deliveries
    /// (0 disables checkpointing entirely).
    checkpoint_interval: u64,
    /// Chained state digest of the delivered prefix
    /// (see [`chain_state_digest`]).
    state_digest: Digest,
    /// Sequence number of the latest stable checkpoint; committed-log
    /// entries at or below it have been pruned.
    low_water_mark: Seq,
    /// Attestation votes for checkpoints not yet stable.
    checkpoint_rounds: BTreeMap<Seq, CheckpointRound>,
    /// The latest stable checkpoint, if any.
    stable_checkpoint: Option<StableCheckpoint>,
    /// Own checkpoint attestations queued by delivery, drained by
    /// [`Replica::take_checkpoint_msgs`].
    pending_checkpoints: Vec<(Seq, Digest)>,
    /// Checkpoints that became stable on this replica.
    checkpoints_stable: u64,
    /// Snapshots installed via [`PbftMsg::SnapshotResponse`].
    snapshots_installed: u64,
}

impl<P: Payload + Default> Replica<P> {
    /// Creates replica `id` of a group of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n` or `n == 0`.
    pub fn new(id: ReplicaId, n: usize) -> Self {
        assert!(n > 0, "group must be non-empty");
        assert!(id < n, "replica id out of range");
        Replica {
            id,
            n,
            f: (n - 1) / 3,
            view: 0,
            next_seq: 1,
            next_deliver: 1,
            instances: BTreeMap::new(),
            ready: BTreeMap::new(),
            behavior: Behavior::Honest,
            view_change_votes: BTreeMap::new(),
            voted_view: 0,
            committed_log: BTreeMap::new(),
            max_state_chunk: DEFAULT_STATE_CHUNK,
            state_rejections: 0,
            state_entries_applied: 0,
            checkpoint_interval: 0,
            state_digest: Digest::ZERO,
            low_water_mark: 0,
            checkpoint_rounds: BTreeMap::new(),
            stable_checkpoint: None,
            pending_checkpoints: Vec::new(),
            checkpoints_stable: 0,
            snapshots_installed: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault tolerance: the maximum number of byzantine replicas.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Leader of view `v`.
    pub fn leader_of(&self, v: View) -> ReplicaId {
        (v % self.n as u64) as ReplicaId
    }

    /// Whether this replica leads the current view.
    pub fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.id
    }

    /// Sets the fault-injection behaviour.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// Current behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Next sequence number that will be delivered.
    pub fn next_deliver(&self) -> Seq {
        self.next_deliver
    }

    /// Instances this replica has assigned a sequence number to but
    /// not yet delivered — the pipelining depth a leader is running at.
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.next_deliver
    }

    /// The committed-prefix hole blocking delivery, if any: a range
    /// `(from, to)` of sequence numbers this replica has *not* decided
    /// even though a later instance already has. A freshly restarted
    /// replica decides live instances at high sequence numbers while
    /// `next_deliver` is still at its restart point, so this is the
    /// rejoin signal the embedding layer polls to drive state transfer.
    /// The signal is backed by a local `2f + 1` commit quorum on the
    /// later instance — a single byzantine peer cannot fabricate it.
    pub fn catch_up_gap(&self) -> Option<(Seq, Seq)> {
        // `ready` is sorted and holds only undelivered seqs; the first
        // key above the consecutive run from `next_deliver` bounds the
        // first hole. (Partial catch-up chunks can leave the hole in
        // the middle of `ready`, not just before its first key.)
        let mut expect = self.next_deliver;
        for &seq in self.ready.keys() {
            if seq > expect {
                return Some((expect, seq - 1));
            }
            expect = seq + 1;
        }
        None
    }

    /// Caps the entries served per `STATE-RESPONSE` (chunking), so one
    /// response never exceeds the transport's frame budget.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn set_max_state_chunk(&mut self, max: usize) {
        assert!(max > 0, "state chunk must allow at least one entry");
        self.max_state_chunk = max;
    }

    /// State-transfer entries this replica rejected because their
    /// commit certificate failed verification.
    pub fn state_rejections(&self) -> u64 {
        self.state_rejections
    }

    /// Number of entries in the committed log (the verifiable decision
    /// history retained for serving catch-up requests). Bounded by
    /// O(checkpoint interval) when checkpointing is enabled.
    pub fn committed_log_len(&self) -> usize {
        self.committed_log.len()
    }

    /// Enables checkpointing: broadcast a [`PbftMsg::Checkpoint`]
    /// attestation every `interval` deliveries (0, the default,
    /// disables checkpointing — nothing is ever pruned and inbound
    /// checkpoint attestations are ignored).
    pub fn set_checkpoint_interval(&mut self, interval: u64) {
        self.checkpoint_interval = interval;
    }

    /// The configured checkpoint interval (0 = disabled).
    pub fn checkpoint_interval(&self) -> u64 {
        self.checkpoint_interval
    }

    /// Sequence number of the latest stable checkpoint (0 if none);
    /// committed-log entries at or below it have been pruned and are
    /// served to laggards via snapshot instead.
    pub fn low_water_mark(&self) -> Seq {
        self.low_water_mark
    }

    /// The latest stable checkpoint, if one exists.
    pub fn stable_checkpoint(&self) -> Option<&StableCheckpoint> {
        self.stable_checkpoint.as_ref()
    }

    /// Chained state digest of the delivered prefix.
    pub fn state_digest(&self) -> Digest {
        self.state_digest
    }

    /// Checkpoints that became stable (gathered `2f + 1` matching
    /// attestations) on this replica.
    pub fn checkpoints_stable(&self) -> u64 {
        self.checkpoints_stable
    }

    /// Snapshots installed from a verified `SNAPSHOT-RESPONSE`.
    pub fn snapshots_installed(&self) -> u64 {
        self.snapshots_installed
    }

    /// State-transfer and snapshot-delta entries applied after their
    /// certificates verified.
    pub fn state_entries_applied(&self) -> u64 {
        self.state_entries_applied
    }

    /// Proposes `payload` at the next sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeader`] if this replica does not lead the current
    /// view.
    pub fn propose(&mut self, payload: P) -> Result<Vec<Outbound<P>>, NotLeader> {
        if !self.is_leader() {
            return Err(NotLeader {
                leader: self.leader_of(self.view),
            });
        }
        if self.behavior == Behavior::Silent {
            return Ok(Vec::new());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let digest = payload.digest();
        let msg = PbftMsg::PrePrepare {
            view: self.view,
            seq,
            digest,
            payload: payload.clone(),
        };
        // The leader's pre-prepare doubles as its prepare vote.
        let view = self.view;
        let id = self.id;
        let inst = self.instance(seq, view);
        inst.payload = Some(payload);
        inst.digest = Some(digest);
        inst.mark_pre_prepare();
        inst.prepares.entry(digest).or_default().insert(id);
        let mut out = vec![Outbound::broadcast(msg)];
        out.extend(self.check_progress(seq));
        Ok(out)
    }

    /// Byzantine leader: proposes `a` to even-numbered replicas and `b`
    /// to odd-numbered ones for the same sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeader`] if this replica does not lead the current
    /// view.
    pub fn propose_equivocating(&mut self, a: P, b: P) -> Result<Vec<Outbound<P>>, NotLeader> {
        if !self.is_leader() {
            return Err(NotLeader {
                leader: self.leader_of(self.view),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut out = Vec::new();
        for r in 0..self.n {
            if r == self.id {
                continue;
            }
            let payload = if r % 2 == 0 { a.clone() } else { b.clone() };
            out.push(Outbound::to(
                r,
                PbftMsg::PrePrepare {
                    view: self.view,
                    seq,
                    digest: payload.digest(),
                    payload,
                },
            ));
        }
        Ok(out)
    }

    /// Handles a protocol message from `from`, returning the responses
    /// to deliver.
    pub fn on_message(&mut self, from: ReplicaId, msg: PbftMsg<P>) -> Vec<Outbound<P>> {
        if self.behavior == Behavior::Silent {
            return Vec::new();
        }
        match msg {
            PbftMsg::PrePrepare {
                view,
                seq,
                digest,
                payload,
            } => self.on_pre_prepare(from, view, seq, digest, payload),
            PbftMsg::Prepare { view, seq, digest } => self.on_prepare(from, view, seq, digest),
            PbftMsg::Commit { view, seq, digest } => self.on_commit(from, view, seq, digest),
            PbftMsg::ViewChange { new_view, prepared } => {
                self.on_view_change(from, new_view, prepared)
            }
            PbftMsg::NewView { view, reproposals } => self.on_new_view(from, view, reproposals),
            PbftMsg::StateRequest { from_seq, to_seq } => {
                self.on_state_request(from, from_seq, to_seq)
            }
            PbftMsg::StateResponse { entries } => self.on_state_response(entries),
            PbftMsg::Checkpoint { seq, state_digest } => {
                self.on_checkpoint(from, seq, state_digest)
            }
            PbftMsg::SnapshotResponse {
                checkpoint_seq,
                checkpoint,
                entries,
            } => self.on_snapshot_response(checkpoint_seq, checkpoint, entries),
        }
    }

    /// Drains the checkpoint attestations queued by delivery, counting
    /// this replica's own vote and returning the broadcasts. Call after
    /// [`Replica::take_decisions`].
    pub fn take_checkpoint_msgs(&mut self) -> Vec<Outbound<P>> {
        if self.pending_checkpoints.is_empty() {
            return Vec::new();
        }
        let pending = std::mem::take(&mut self.pending_checkpoints);
        if self.behavior == Behavior::Silent {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (seq, digest) in pending {
            // A vote-corrupting byzantine replica attests a garbage
            // digest; it can never contribute to an honest quorum.
            let vote = if self.behavior == Behavior::VoteGarbage {
                self.corrupt(digest)
            } else {
                digest
            };
            self.record_checkpoint_vote(self.id, seq, vote);
            out.push(Outbound::broadcast(PbftMsg::Checkpoint {
                seq,
                state_digest: vote,
            }));
        }
        out
    }

    /// Handles a peer's checkpoint attestation.
    fn on_checkpoint(
        &mut self,
        from: ReplicaId,
        seq: Seq,
        state_digest: Digest,
    ) -> Vec<Outbound<P>> {
        // A replica with checkpointing disabled stays fully inert: it
        // neither votes nor prunes, so a mixed-configuration group
        // cannot surprise it with garbage collection.
        if self.checkpoint_interval == 0 || from >= self.n || seq <= self.low_water_mark {
            return Vec::new();
        }
        self.record_checkpoint_vote(from, seq, state_digest);
        Vec::new()
    }

    /// Counts one checkpoint attestation; at `2f + 1` matching digests
    /// the checkpoint becomes stable.
    fn record_checkpoint_vote(&mut self, from: ReplicaId, seq: Seq, digest: Digest) {
        if seq <= self.low_water_mark {
            return;
        }
        let round = self
            .checkpoint_rounds
            .entry(seq)
            .or_insert_with(|| CheckpointRound {
                t_open: trace_now(),
                votes: BTreeMap::new(),
            });
        let votes = round.votes.entry(digest).or_default();
        votes.insert(from);
        let checkpoint_quorum = 2 * self.f + 1;
        if votes.len() >= checkpoint_quorum {
            let voters: Vec<ReplicaId> = votes.iter().copied().collect();
            let t_open = round.t_open;
            self.stabilize_checkpoint(seq, digest, voters, t_open);
        }
    }

    /// Marks the checkpoint at `seq` stable: advances the low-water
    /// mark and garbage-collects everything the checkpoint covers.
    fn stabilize_checkpoint(
        &mut self,
        seq: Seq,
        state_digest: Digest,
        voters: Vec<ReplicaId>,
        t_open: u64,
    ) {
        self.low_water_mark = seq;
        self.stable_checkpoint = Some(StableCheckpoint {
            seq,
            state_digest,
            voters,
        });
        // Entries at or below the stable checkpoint are covered by the
        // quorum attestation; laggards below the low-water mark are
        // served a snapshot, so the verbatim history can go.
        self.committed_log = self.committed_log.split_off(&(seq + 1));
        self.checkpoint_rounds = self.checkpoint_rounds.split_off(&(seq + 1));
        self.checkpoints_stable += 1;
        let now = trace_now();
        if t_open > 0 && now > 0 {
            curb_telemetry::record_span(
                "consensus.checkpoint",
                t_open,
                now,
                self.id as i64,
                seq as i64,
            );
        }
    }

    /// Applies a `SNAPSHOT-RESPONSE`: adopts a quorum-attested stable
    /// checkpoint as the new delivery floor (skipping the pruned
    /// prefix entirely) and replays the certificate-verified delta
    /// above it. The whole response is verified before anything is
    /// installed — a snapshot install is irreversible, so a partially
    /// lying response must not be applied at all.
    fn on_snapshot_response(
        &mut self,
        checkpoint_seq: Seq,
        checkpoint: CommitCert,
        entries: Vec<CommittedEntry<P>>,
    ) -> Vec<Outbound<P>> {
        if checkpoint_seq < self.next_deliver || checkpoint_seq < self.low_water_mark {
            // The checkpointed prefix is already covered locally; the
            // delta may still close a live gap, so feed it through the
            // regular verified path. `checkpoint_seq == low_water_mark`
            // with delivery still below it must NOT take this path: a
            // restarted replica can learn the mark from its peers'
            // gossiped CHECKPOINT votes before any snapshot lands, and
            // only an install can move `next_deliver` past the pruned
            // prefix — nobody can serve those entries verbatim anymore.
            return self.on_state_response(entries);
        }
        let t_verify = trace_now();
        // The chained state digest cannot be recomputed without the
        // pruned prefix; trust rests on the attestation quorum, so the
        // certificate must at least be structurally sound.
        if checkpoint.verify_structure(self.n).is_err() {
            self.state_rejections += 1;
            return Vec::new();
        }
        for entry in &entries {
            if entry.seq <= checkpoint_seq || entry.cert.verify(&entry.payload, self.n).is_err() {
                self.state_rejections += 1;
                return Vec::new();
            }
        }
        let t_verified = trace_now();
        curb_telemetry::record_span(
            "catchup.verify",
            t_verify,
            t_verified,
            self.id as i64,
            checkpoint_seq as i64,
        );
        // Install: the checkpoint becomes this replica's own stable
        // checkpoint and delivery resumes just above it.
        self.state_digest = checkpoint.digest;
        self.low_water_mark = checkpoint_seq;
        self.stable_checkpoint = Some(StableCheckpoint {
            seq: checkpoint_seq,
            state_digest: checkpoint.digest,
            voters: checkpoint.voters.clone(),
        });
        self.next_deliver = self.next_deliver.max(checkpoint_seq + 1);
        self.next_seq = self.next_seq.max(checkpoint_seq + 1);
        self.ready = self.ready.split_off(&(checkpoint_seq + 1));
        self.instances = self.instances.split_off(&(checkpoint_seq + 1));
        self.committed_log = self.committed_log.split_off(&(checkpoint_seq + 1));
        self.checkpoint_rounds = self.checkpoint_rounds.split_off(&(checkpoint_seq + 1));
        self.snapshots_installed += 1;
        // Replay the already-verified delta.
        for entry in entries {
            if entry.seq < self.next_deliver || self.committed_log.contains_key(&entry.seq) {
                continue;
            }
            if let Some(inst) = self.instances.get_mut(&entry.seq) {
                inst.decided = true;
            }
            let seq = entry.seq;
            self.ready.insert(seq, entry.payload.clone());
            self.committed_log.insert(seq, (entry.payload, entry.cert));
            self.next_seq = self.next_seq.max(seq + 1);
            self.state_entries_applied += 1;
        }
        curb_telemetry::record_span(
            "catchup.apply",
            t_verified,
            trace_now(),
            self.id as i64,
            checkpoint_seq as i64,
        );
        Vec::new()
    }

    /// Initiates a view change to `view + 1` (called by the embedding
    /// layer on timeout). Returns the `VIEW-CHANGE` broadcast.
    pub fn start_view_change(&mut self) -> Vec<Outbound<P>> {
        if self.behavior == Behavior::Silent {
            return Vec::new();
        }
        let target = self.view + 1;
        self.vote_view_change(target)
    }

    /// Drains decided payloads, in sequence order, exactly once.
    pub fn take_decisions(&mut self) -> Vec<(Seq, P)> {
        let mut out = Vec::new();
        while let Some(p) = self.ready.remove(&self.next_deliver) {
            let seq = self.next_deliver;
            // Chain the state digest over the delivered prefix and
            // queue a checkpoint attestation at every interval
            // boundary (drained by `take_checkpoint_msgs`).
            self.state_digest = chain_state_digest(self.state_digest, seq, p.digest());
            if self.checkpoint_interval > 0 && seq.is_multiple_of(self.checkpoint_interval) {
                self.pending_checkpoints.push((seq, self.state_digest));
            }
            out.push((seq, p));
            // Garbage-collect the decided instance.
            if let Some(inst) = self.instances.remove(&seq) {
                // Entries applied via state transfer have no live phase
                // timeline (t_decided == 0), so no spans are emitted.
                if inst.t_decided > 0 && inst.t_open > 0 {
                    let now = trace_now();
                    let (r, s) = (self.id as i64, seq as i64);
                    curb_telemetry::record_span("consensus.deliver", inst.t_decided, now, r, s);
                    curb_telemetry::record_span("consensus.e2e", inst.t_open, now, r, s);
                }
            }
            self.next_deliver += 1;
        }
        out
    }

    fn instance(&mut self, seq: Seq, view: View) -> &mut Instance<P> {
        let inst = self
            .instances
            .entry(seq)
            .or_insert_with(|| Instance::new(view));
        if inst.view < view && !inst.decided {
            // A new view supersedes the undecided instance; votes from
            // the old view are discarded.
            *inst = Instance::new(view);
        }
        inst
    }

    fn corrupt(&self, digest: Digest) -> Digest {
        let mut d = digest;
        d.0[0] ^= 0xFF;
        d.0[31] ^= self.id as u8 ^ 0xA5;
        d
    }

    fn on_pre_prepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: Seq,
        digest: Digest,
        payload: P,
    ) -> Vec<Outbound<P>> {
        if view != self.view || from != self.leader_of(view) || seq < self.next_deliver {
            return Vec::new();
        }
        if payload.digest() != digest {
            return Vec::new(); // malformed proposal
        }
        {
            let inst = self.instance(seq, view);
            if inst.decided {
                return Vec::new();
            }
            if let Some(existing) = inst.digest {
                if existing != digest {
                    // Leader equivocation: keep the first proposal.
                    return Vec::new();
                }
            }
            inst.payload = Some(payload);
            inst.digest = Some(digest);
            inst.mark_pre_prepare();
        }
        // Count the leader's implicit prepare and our own.
        let vote_digest = if self.behavior == Behavior::VoteGarbage {
            self.corrupt(digest)
        } else {
            digest
        };
        {
            let leader = self.leader_of(view);
            let id = self.id;
            let inst = self.instance(seq, view);
            inst.prepares.entry(digest).or_default().insert(leader);
            inst.prepares.entry(vote_digest).or_default().insert(id);
        }
        let mut out = vec![Outbound::broadcast(PbftMsg::Prepare {
            view,
            seq,
            digest: vote_digest,
        })];
        out.extend(self.check_progress(seq));
        out
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: Seq,
        digest: Digest,
    ) -> Vec<Outbound<P>> {
        if view != self.view || seq < self.next_deliver {
            return Vec::new();
        }
        self.instance(seq, view)
            .prepares
            .entry(digest)
            .or_default()
            .insert(from);
        self.check_progress(seq)
    }

    fn on_commit(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: Seq,
        digest: Digest,
    ) -> Vec<Outbound<P>> {
        if view != self.view || seq < self.next_deliver {
            return Vec::new();
        }
        self.instance(seq, view)
            .commits
            .entry(digest)
            .or_default()
            .insert(from);
        self.check_progress(seq)
    }

    /// Advances the prepare→commit→decide pipeline for `seq`.
    fn check_progress(&mut self, seq: Seq) -> Vec<Outbound<P>> {
        let prepare_quorum = 2 * self.f + 1;
        let commit_quorum = 2 * self.f + 1;
        let id = self.id;
        let garbage = self.behavior == Behavior::VoteGarbage;
        let view = self.view;

        let Some(inst) = self.instances.get_mut(&seq) else {
            return Vec::new();
        };
        if inst.decided || inst.view != view {
            return Vec::new();
        }
        let Some(digest) = inst.digest else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let prepared = inst
            .prepares
            .get(&digest)
            .is_some_and(|s| s.len() >= prepare_quorum);
        if prepared && !inst.sent_commit {
            inst.sent_commit = true;
            if inst.t_prepared == 0 {
                inst.t_prepared = trace_now();
            }
            let vote_digest = if garbage {
                let mut d = digest;
                d.0[0] ^= 0xFF;
                d.0[31] ^= id as u8 ^ 0xA5;
                d
            } else {
                digest
            };
            inst.commits.entry(vote_digest).or_default().insert(id);
            out.push(Outbound::broadcast(PbftMsg::Commit {
                view,
                seq,
                digest: vote_digest,
            }));
        }
        let committed = inst
            .commits
            .get(&digest)
            .is_some_and(|s| s.len() >= commit_quorum);
        if committed && inst.sent_commit && !inst.decided {
            inst.decided = true;
            inst.t_decided = trace_now();
            if inst.t_decided > 0 && inst.t_open > 0 {
                let (r, s) = (id as i64, seq as i64);
                curb_telemetry::record_span(
                    "consensus.pre_prepare",
                    inst.t_open,
                    inst.t_pre_prepare,
                    r,
                    s,
                );
                curb_telemetry::record_span(
                    "consensus.prepare",
                    inst.t_pre_prepare,
                    inst.t_prepared,
                    r,
                    s,
                );
                curb_telemetry::record_span(
                    "consensus.commit",
                    inst.t_prepared,
                    inst.t_decided,
                    r,
                    s,
                );
            }
            let payload = inst.payload.clone().expect("digest implies payload");
            // Snapshot the commit quorum as this decision's certificate
            // so the entry can later be served, with evidence, to a
            // rejoining replica.
            let voters: Vec<ReplicaId> = inst
                .commits
                .get(&digest)
                .expect("committed implies votes")
                .iter()
                .copied()
                .collect();
            let cert = CommitCert { digest, voters };
            // A straggler quorum completing below the low-water mark is
            // already covered by the stable checkpoint; re-inserting it
            // would leak a log entry GC never revisits.
            if seq > self.low_water_mark {
                self.committed_log.insert(seq, (payload.clone(), cert));
            }
            self.ready.insert(seq, payload);
        }
        out
    }

    /// Serves a `STATE-REQUEST`: answers with the committed entries in
    /// `from_seq ..= to_seq` (capped at `max_state_chunk`), each with
    /// its commit certificate. A request reaching below the low-water
    /// mark cannot be served verbatim (that history is pruned) and is
    /// answered with a `SNAPSHOT-RESPONSE` instead: the stable
    /// checkpoint certificate plus the delta entries above it, making
    /// catch-up O(delta) rather than O(history). An empty response
    /// tells the requester this peer cannot help, so it can try
    /// another one immediately.
    fn on_state_request(
        &mut self,
        from: ReplicaId,
        from_seq: Seq,
        to_seq: Seq,
    ) -> Vec<Outbound<P>> {
        if from == self.id || from >= self.n {
            return Vec::new();
        }
        let lo = from_seq.max(1);
        if lo <= self.low_water_mark {
            if let Some(cp) = self.stable_checkpoint.clone() {
                let mut entries = Vec::new();
                let delta_lo = cp.seq + 1;
                if delta_lo <= to_seq {
                    for (&seq, (payload, cert)) in self.committed_log.range(delta_lo..=to_seq) {
                        if entries.len() >= self.max_state_chunk {
                            break;
                        }
                        let mut cert = cert.clone();
                        if self.behavior == Behavior::StateGarbage {
                            cert.digest = self.corrupt(cert.digest);
                        }
                        entries.push(CommittedEntry {
                            seq,
                            payload: payload.clone(),
                            cert,
                        });
                    }
                }
                let mut checkpoint = CommitCert {
                    digest: cp.state_digest,
                    voters: cp.voters,
                };
                if self.behavior == Behavior::StateGarbage {
                    // The lying peer's attestation quorum is bogus;
                    // structural verification must catch it.
                    checkpoint.voters = vec![self.id];
                }
                return vec![Outbound::to(
                    from,
                    PbftMsg::SnapshotResponse {
                        checkpoint_seq: cp.seq,
                        checkpoint,
                        entries,
                    },
                )];
            }
        }
        let mut entries = Vec::new();
        if lo <= to_seq {
            for (&seq, (payload, cert)) in self.committed_log.range(lo..=to_seq) {
                if entries.len() >= self.max_state_chunk {
                    break;
                }
                let mut cert = cert.clone();
                if self.behavior == Behavior::StateGarbage {
                    // The lying peer serves evidence that does not
                    // match the payload; verification must catch it.
                    cert.digest = self.corrupt(cert.digest);
                }
                entries.push(CommittedEntry {
                    seq,
                    payload: payload.clone(),
                    cert,
                });
            }
        }
        vec![Outbound::to(from, PbftMsg::StateResponse { entries })]
    }

    /// Applies a `STATE-RESPONSE`: every entry is verified against its
    /// commit certificate before being treated as decided. Processing
    /// stops at the first invalid entry (the rest of that response is
    /// suspect); the rejection is counted so the embedding layer can
    /// retry against a different peer.
    fn on_state_response(&mut self, entries: Vec<CommittedEntry<P>>) -> Vec<Outbound<P>> {
        for entry in entries {
            if entry.seq < self.next_deliver || self.committed_log.contains_key(&entry.seq) {
                continue; // already delivered or already held
            }
            let t_verify = trace_now();
            let verdict = entry.cert.verify(&entry.payload, self.n);
            let t_verified = trace_now();
            curb_telemetry::record_span(
                "catchup.verify",
                t_verify,
                t_verified,
                self.id as i64,
                entry.seq as i64,
            );
            if verdict.is_err() {
                self.state_rejections += 1;
                break;
            }
            if let Some(inst) = self.instances.get_mut(&entry.seq) {
                // A live instance for this seq may still gather votes;
                // marking it decided prevents a second decision.
                inst.decided = true;
            }
            let seq = entry.seq;
            self.ready.insert(seq, entry.payload.clone());
            self.committed_log.insert(seq, (entry.payload, entry.cert));
            self.next_seq = self.next_seq.max(seq + 1);
            self.state_entries_applied += 1;
            curb_telemetry::record_span(
                "catchup.apply",
                t_verified,
                trace_now(),
                self.id as i64,
                seq as i64,
            );
        }
        Vec::new()
    }

    fn vote_view_change(&mut self, target: View) -> Vec<Outbound<P>> {
        if target <= self.voted_view {
            return Vec::new();
        }
        self.voted_view = target;
        // Carry prepared-but-undecided payloads forward.
        let prepared: Vec<(Seq, P)> = self
            .instances
            .iter()
            .filter(|(_, inst)| !inst.decided)
            .filter_map(|(&seq, inst)| {
                let digest = inst.digest?;
                let votes = inst.prepares.get(&digest)?;
                if votes.len() > 2 * self.f {
                    Some((seq, inst.payload.clone()?))
                } else {
                    None
                }
            })
            .collect();
        self.view_change_votes
            .entry(target)
            .or_default()
            .insert(self.id, prepared.clone());
        let mut out = vec![Outbound::broadcast(PbftMsg::ViewChange {
            new_view: target,
            prepared,
        })];
        out.extend(self.maybe_activate_view(target));
        out
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: View,
        prepared: Vec<(Seq, P)>,
    ) -> Vec<Outbound<P>> {
        if new_view <= self.view {
            return Vec::new();
        }
        self.view_change_votes
            .entry(new_view)
            .or_default()
            .insert(from, prepared);
        let mut out = Vec::new();
        // Amplification: join the view change once f+1 peers demand it.
        let votes = self.view_change_votes[&new_view].len();
        if votes > self.f && self.voted_view < new_view {
            out.extend(self.vote_view_change(new_view));
        }
        out.extend(self.maybe_activate_view(new_view));
        out
    }

    /// If this replica leads `target` and holds a `2f+1` view-change
    /// quorum, broadcast NEW-VIEW and enter the view.
    fn maybe_activate_view(&mut self, target: View) -> Vec<Outbound<P>> {
        if target <= self.view || self.leader_of(target) != self.id {
            return Vec::new();
        }
        let Some(votes) = self.view_change_votes.get(&target) else {
            return Vec::new();
        };
        if votes.len() < 2 * self.f + 1 {
            return Vec::new();
        }
        // Union of carried payloads: any prepared payload is safe to
        // re-propose (PBFT safety: conflicting payloads cannot both
        // gather prepare quorums in any view).
        let mut carried: BTreeMap<Seq, P> = BTreeMap::new();
        for prepared in votes.values() {
            for (seq, p) in prepared {
                carried.entry(*seq).or_insert_with(|| p.clone());
            }
        }
        // Fill holes between the delivery pointer and the highest
        // carried sequence with no-op (default) payloads so delivery
        // never stalls.
        let max_carried = carried.keys().max().copied().unwrap_or(0);
        let mut reproposals: Vec<(Seq, P)> = Vec::new();
        for seq in self.next_deliver..=max_carried {
            if self.instances.get(&seq).is_some_and(|i| i.decided) {
                continue;
            }
            let payload = carried.remove(&seq).unwrap_or_default();
            reproposals.push((seq, payload));
        }
        self.enter_view(target);
        self.next_seq = self.next_seq.max(max_carried + 1);
        let mut out = vec![Outbound::broadcast(PbftMsg::NewView {
            view: target,
            reproposals: reproposals.clone(),
        })];
        // Process the re-proposals locally as leader.
        for (seq, payload) in reproposals {
            let digest = payload.digest();
            let view = self.view;
            let id = self.id;
            let inst = self.instance(seq, view);
            inst.payload = Some(payload);
            inst.digest = Some(digest);
            inst.mark_pre_prepare();
            inst.prepares.entry(digest).or_default().insert(id);
            out.extend(self.check_progress(seq));
        }
        out
    }

    fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: View,
        reproposals: Vec<(Seq, P)>,
    ) -> Vec<Outbound<P>> {
        if view <= self.view || from != self.leader_of(view) {
            return Vec::new();
        }
        self.enter_view(view);
        let mut out = Vec::new();
        let leader = from;
        for (seq, payload) in reproposals {
            if seq < self.next_deliver {
                continue;
            }
            let digest = payload.digest();
            let vote_digest = if self.behavior == Behavior::VoteGarbage {
                self.corrupt(digest)
            } else {
                digest
            };
            {
                let id = self.id;
                let inst = self.instance(seq, view);
                if inst.decided {
                    continue;
                }
                inst.payload = Some(payload);
                inst.digest = Some(digest);
                inst.mark_pre_prepare();
                inst.prepares.entry(digest).or_default().insert(leader);
                inst.prepares.entry(vote_digest).or_default().insert(id);
            }
            out.push(Outbound::broadcast(PbftMsg::Prepare {
                view,
                seq,
                digest: vote_digest,
            }));
            out.extend(self.check_progress(seq));
            self.next_seq = self.next_seq.max(seq + 1);
        }
        out
    }

    fn enter_view(&mut self, view: View) {
        self.view = view;
        self.voted_view = self.voted_view.max(view);
        self.view_change_votes.retain(|&v, _| v > view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Dest;
    use crate::payload::BytesPayload;

    fn payload(b: &[u8]) -> BytesPayload {
        BytesPayload(b.to_vec())
    }

    #[test]
    fn new_validates_arguments() {
        let r = Replica::<BytesPayload>::new(0, 4);
        assert_eq!(r.f(), 1);
        assert_eq!(r.n(), 4);
        assert!(r.is_leader());
        assert_eq!(Replica::<BytesPayload>::new(0, 7).f(), 2);
        assert_eq!(Replica::<BytesPayload>::new(0, 1).f(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_id_panics() {
        Replica::<BytesPayload>::new(4, 4);
    }

    #[test]
    fn non_leader_cannot_propose() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        assert_eq!(r.propose(payload(b"x")), Err(NotLeader { leader: 0 }));
    }

    #[test]
    fn leader_pre_prepare_broadcast() {
        let mut r = Replica::<BytesPayload>::new(0, 4);
        let out = r.propose(payload(b"x")).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, Dest::Broadcast);
        assert!(matches!(
            out[0].msg,
            PbftMsg::PrePrepare {
                seq: 1,
                view: 0,
                ..
            }
        ));
    }

    #[test]
    fn single_replica_group_decides_instantly() {
        let mut r = Replica::<BytesPayload>::new(0, 1);
        let _ = r.propose(payload(b"solo")).unwrap();
        assert_eq!(r.take_decisions(), vec![(1, payload(b"solo"))]);
        assert_eq!(r.take_decisions(), vec![], "decisions are exactly-once");
    }

    #[test]
    fn backup_rejects_pre_prepare_from_non_leader() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        let p = payload(b"x");
        let out = r.on_message(
            2, // not the leader of view 0
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: p.digest(),
                payload: p,
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn backup_rejects_mismatched_digest() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        let out = r.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: payload(b"other").digest(),
                payload: payload(b"x"),
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn equivocating_leader_first_proposal_sticks() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        let a = payload(b"a");
        let b = payload(b"b");
        let out1 = r.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: a.digest(),
                payload: a.clone(),
            },
        );
        assert_eq!(out1.len(), 1, "prepare for the first proposal");
        let out2 = r.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: b.digest(),
                payload: b,
            },
        );
        assert!(out2.is_empty(), "conflicting proposal ignored");
    }

    #[test]
    fn silent_replica_outputs_nothing() {
        let mut r = Replica::<BytesPayload>::new(0, 4);
        r.set_behavior(Behavior::Silent);
        assert!(r.propose(payload(b"x")).unwrap().is_empty());
        assert!(r.start_view_change().is_empty());
        let p = payload(b"y");
        assert!(r
            .on_message(
                1,
                PbftMsg::Prepare {
                    view: 0,
                    seq: 1,
                    digest: p.digest()
                }
            )
            .is_empty());
    }

    #[test]
    fn vote_garbage_sends_corrupted_digest() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        r.set_behavior(Behavior::VoteGarbage);
        let p = payload(b"x");
        let out = r.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: p.digest(),
                payload: p.clone(),
            },
        );
        match &out[0].msg {
            PbftMsg::Prepare { digest, .. } => assert_ne!(*digest, p.digest()),
            other => panic!("expected prepare, got {other:?}"),
        }
    }

    #[test]
    fn view_change_vote_is_idempotent() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        let first = r.start_view_change();
        assert_eq!(first.len(), 1);
        assert!(r.start_view_change().is_empty(), "no duplicate votes");
    }

    #[test]
    fn old_view_messages_ignored_after_view_change() {
        // Replica 1 moves to view 1; pre-prepares from view 0 must be
        // rejected.
        let mut r = Replica::<BytesPayload>::new(2, 4);
        // Deliver NEW-VIEW from replica 1 (leader of view 1).
        let out = r.on_message(
            1,
            PbftMsg::NewView {
                view: 1,
                reproposals: vec![],
            },
        );
        assert!(out.is_empty());
        assert_eq!(r.view(), 1);
        let p = payload(b"late");
        let out = r.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: p.digest(),
                payload: p,
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn new_view_only_accepted_from_its_leader() {
        let mut r = Replica::<BytesPayload>::new(2, 4);
        let out = r.on_message(
            3,
            PbftMsg::NewView {
                view: 1,
                reproposals: vec![],
            },
        );
        assert!(out.is_empty());
        assert_eq!(r.view(), 0, "NEW-VIEW from wrong leader rejected");
    }

    /// Drives a full pre-prepare/prepare/commit round at `seq` on
    /// replica `r` (id 1 of 4, leader 0), so it decides locally and
    /// records the entry in its committed log.
    fn decide_at(r: &mut Replica<BytesPayload>, seq: Seq, p: &BytesPayload) {
        let d = p.digest();
        r.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq,
                digest: d,
                payload: p.clone(),
            },
        );
        for peer in [2, 3] {
            r.on_message(
                peer,
                PbftMsg::Prepare {
                    view: 0,
                    seq,
                    digest: d,
                },
            );
        }
        for peer in [0, 3] {
            r.on_message(
                peer,
                PbftMsg::Commit {
                    view: 0,
                    seq,
                    digest: d,
                },
            );
        }
    }

    #[test]
    fn decisions_are_recorded_with_commit_certificates() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        decide_at(&mut r, 1, &payload(b"first"));
        assert_eq!(r.committed_log_len(), 1);
        assert_eq!(r.take_decisions(), vec![(1, payload(b"first"))]);
        // The log survives delivery (pruning happens only below a
        // stable checkpoint, and checkpointing is off by default) and
        // the recorded certificate verifies against the payload.
        assert_eq!(r.committed_log_len(), 1);
        let out = r.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 1,
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, Dest::To(3));
        match &out[0].msg {
            PbftMsg::StateResponse { entries } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].seq, 1);
                assert_eq!(entries[0].payload, payload(b"first"));
                assert_eq!(entries[0].cert.verify(&entries[0].payload, 4), Ok(()));
                assert!(entries[0].cert.voters.len() >= 3, "2f+1 voters recorded");
            }
            other => panic!("expected state response, got {other:?}"),
        }
    }

    #[test]
    fn catch_up_gap_signals_hole_below_live_frontier() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        assert_eq!(r.catch_up_gap(), None, "fresh replica has no gap");
        // Replica decides seq 5 (live traffic) while 1..=4 never arrive.
        decide_at(&mut r, 5, &payload(b"live"));
        assert_eq!(r.catch_up_gap(), Some((1, 4)));
        assert!(r.take_decisions().is_empty(), "hole blocks delivery");
        // A verified state response closes the hole and delivery flows.
        let mut donor = Replica::<BytesPayload>::new(2, 4);
        for seq in 1..=4 {
            decide_at(&mut donor, seq, &payload(format!("p{seq}").as_bytes()));
        }
        let out = donor.on_message(
            1,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 4,
            },
        );
        let PbftMsg::StateResponse { entries } = out[0].msg.clone() else {
            panic!("expected state response");
        };
        r.on_message(2, PbftMsg::StateResponse { entries });
        assert_eq!(r.catch_up_gap(), None);
        let delivered = r.take_decisions();
        assert_eq!(delivered.len(), 5);
        assert_eq!(delivered[0], (1, payload(b"p1")));
        assert_eq!(delivered[4], (5, payload(b"live")));
        assert_eq!(r.next_deliver(), 6);
    }

    #[test]
    fn state_entries_with_bad_certificates_are_rejected() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        decide_at(&mut r, 5, &payload(b"live"));
        let forged = |voters: Vec<usize>, digest_of: &BytesPayload| CommittedEntry {
            seq: 1,
            payload: payload(b"evil"),
            cert: CommitCert {
                digest: digest_of.digest(),
                voters,
            },
        };
        // Digest mismatch, tiny quorum, duplicate voters, out-of-range
        // voters: every forgery is rejected and counted, and the gap
        // stays open.
        let cases = vec![
            forged(vec![0, 2, 3], &payload(b"other")),
            forged(vec![0, 2], &payload(b"evil")),
            forged(vec![0, 2, 2], &payload(b"evil")),
            forged(vec![0, 2, 9], &payload(b"evil")),
        ];
        for (i, entry) in cases.into_iter().enumerate() {
            r.on_message(
                3,
                PbftMsg::StateResponse {
                    entries: vec![entry],
                },
            );
            assert_eq!(r.state_rejections(), (i + 1) as u64);
            assert_eq!(r.catch_up_gap(), Some((1, 4)), "case {i} must not apply");
        }
        assert!(r.take_decisions().is_empty());
    }

    #[test]
    fn rejection_stops_mid_response_but_keeps_valid_prefix() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        decide_at(&mut r, 3, &payload(b"live"));
        let mut donor = Replica::<BytesPayload>::new(2, 4);
        for seq in 1..=2 {
            decide_at(&mut donor, seq, &payload(format!("p{seq}").as_bytes()));
        }
        let out = donor.on_message(
            1,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 2,
            },
        );
        let PbftMsg::StateResponse { mut entries } = out[0].msg.clone() else {
            panic!("expected state response");
        };
        // Corrupt the second entry's certificate only.
        entries[1].cert.digest.0[0] ^= 0xFF;
        r.on_message(2, PbftMsg::StateResponse { entries });
        assert_eq!(r.state_rejections(), 1);
        // Seq 1 applied; seq 2 still missing.
        assert_eq!(r.catch_up_gap(), Some((2, 2)));
        assert_eq!(r.take_decisions(), vec![(1, payload(b"p1"))]);
    }

    #[test]
    fn state_garbage_peer_serves_unverifiable_entries() {
        let mut liar = Replica::<BytesPayload>::new(2, 4);
        decide_at(&mut liar, 1, &payload(b"truth"));
        liar.set_behavior(Behavior::StateGarbage);
        let out = liar.on_message(
            1,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 1,
            },
        );
        let PbftMsg::StateResponse { entries } = &out[0].msg else {
            panic!("expected state response");
        };
        assert!(
            entries[0].cert.verify(&entries[0].payload, 4).is_err(),
            "the liar's certificate must fail verification"
        );
    }

    #[test]
    fn state_request_for_unknown_range_gets_empty_response() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        let out = r.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 100,
            },
        );
        match &out[0].msg {
            PbftMsg::StateResponse { entries } => assert!(entries.is_empty()),
            other => panic!("expected empty state response, got {other:?}"),
        }
        // An inverted range must not panic.
        let out = r.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 9,
                to_seq: 2,
            },
        );
        match &out[0].msg {
            PbftMsg::StateResponse { entries } => assert!(entries.is_empty()),
            other => panic!("expected empty state response, got {other:?}"),
        }
    }

    #[test]
    fn tracing_emits_contiguous_phase_spans() {
        use curb_telemetry::VirtualClock;
        use std::sync::{Arc, Mutex};
        // The tracer is process-global; hold a lock so a second
        // tracing test added later cannot interleave with this one.
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };

        let vc = Arc::new(VirtualClock::new());
        curb_telemetry::set_clock(vc.clone());
        curb_telemetry::enable();
        let _ = curb_telemetry::drain();

        // Group of 40 (f = 13, quorum 27) with a replica id no other
        // test uses, so concurrently running tests that also decide
        // instances cannot collide with the spans asserted below.
        let mut r = Replica::<BytesPayload>::new(33, 40);
        let p = payload(b"traced");
        let d = p.digest();
        let prep = |seq, digest| PbftMsg::Prepare {
            view: 0,
            seq,
            digest,
        };
        // t=1000: an early prepare vote opens the instance (peer 30 is
        // outside the 1..=24 range used for the quorum below).
        vc.set_nanos(1000);
        r.on_message(30, prep(1, d));
        // t=2000: the leader's pre-prepare arrives.
        vc.set_nanos(2000);
        r.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: d,
                payload: p.clone(),
            },
        );
        // t=3000: prepare quorum (implicit leader + own + peer 30 + 24).
        vc.set_nanos(3000);
        for peer in 1..=24 {
            r.on_message(peer, prep(1, d));
        }
        // t=4000: commit quorum (own + 26 peers) → decided.
        vc.set_nanos(4000);
        for peer in 1..=26 {
            r.on_message(
                peer,
                PbftMsg::Commit {
                    view: 0,
                    seq: 1,
                    digest: d,
                },
            );
        }
        // t=5000: the embedding layer drains the decision.
        vc.set_nanos(5000);
        assert_eq!(r.take_decisions(), vec![(1, p)]);

        let spans: Vec<_> = curb_telemetry::drain()
            .into_iter()
            .filter(|s| s.replica == 33)
            .collect();
        curb_telemetry::disable();
        curb_telemetry::set_clock(Arc::new(curb_telemetry::MonotonicClock::new()));

        let span = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span {name} in {spans:?}"))
        };
        let pre = span("consensus.pre_prepare");
        let prepare = span("consensus.prepare");
        let commit = span("consensus.commit");
        let deliver = span("consensus.deliver");
        let e2e = span("consensus.e2e");
        assert_eq!((pre.start_ns, pre.dur_ns), (1000, 1000));
        assert_eq!((prepare.start_ns, prepare.dur_ns), (2000, 1000));
        assert_eq!((commit.start_ns, commit.dur_ns), (3000, 1000));
        assert_eq!((deliver.start_ns, deliver.dur_ns), (4000, 1000));
        assert_eq!((e2e.start_ns, e2e.dur_ns), (1000, 4000));
        // Contiguity: the phases tile the end-to-end span exactly.
        assert_eq!(
            pre.dur_ns + prepare.dur_ns + commit.dur_ns + deliver.dur_ns,
            e2e.dur_ns
        );
        assert!(spans.iter().all(|s| s.seq == 1));
    }

    #[test]
    fn state_chunking_respects_the_cap() {
        let mut donor = Replica::<BytesPayload>::new(1, 4);
        for seq in 1..=6 {
            decide_at(&mut donor, seq, &payload(format!("p{seq}").as_bytes()));
        }
        donor.set_max_state_chunk(2);
        let out = donor.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 6,
            },
        );
        let PbftMsg::StateResponse { entries } = &out[0].msg else {
            panic!("expected state response");
        };
        assert_eq!(entries.len(), 2, "chunk cap limits the response");
        assert_eq!(
            (entries[0].seq, entries[1].seq),
            (1, 2),
            "lowest seqs first"
        );
    }

    /// Drains `r`'s queued checkpoint attestations and echoes each one
    /// back as matching votes from peers 2 and 3 (`r` is id 1 of 4, so
    /// own vote + two peers reaches the `2f + 1 = 3` quorum).
    fn stabilize_via_peers(r: &mut Replica<BytesPayload>) {
        for ob in r.take_checkpoint_msgs() {
            let PbftMsg::Checkpoint { seq, state_digest } = ob.msg else {
                panic!("expected checkpoint broadcast");
            };
            for peer in [2, 3] {
                r.on_message(peer, PbftMsg::Checkpoint { seq, state_digest });
            }
        }
    }

    #[test]
    fn checkpoints_stabilize_and_prune_the_log() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        r.set_checkpoint_interval(4);
        for seq in 1..=10 {
            decide_at(&mut r, seq, &payload(format!("p{seq}").as_bytes()));
        }
        assert_eq!(r.take_decisions().len(), 10);
        stabilize_via_peers(&mut r);
        // Checkpoints at 4 and 8 went stable; everything at or below 8
        // is pruned, entries 9 and 10 remain.
        assert_eq!(r.checkpoints_stable(), 2);
        assert_eq!(r.low_water_mark(), 8);
        assert_eq!(r.committed_log_len(), 2);
        let cp = r.stable_checkpoint().expect("stable checkpoint").clone();
        assert_eq!(cp.seq, 8);
        assert!(cp.voters.len() >= 3);
        // A request reaching below the low-water mark is answered with
        // a snapshot: the attestation cert plus the delta above it.
        let out = r.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 10,
            },
        );
        match &out[0].msg {
            PbftMsg::SnapshotResponse {
                checkpoint_seq,
                checkpoint,
                entries,
            } => {
                assert_eq!(*checkpoint_seq, 8);
                assert_eq!(checkpoint.digest, cp.state_digest);
                assert_eq!(checkpoint.verify_structure(4), Ok(()));
                assert_eq!(
                    entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
                    vec![9, 10]
                );
            }
            other => panic!("expected snapshot response, got {other:?}"),
        }
        // Requests above the low-water mark still get verbatim history.
        let out = r.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 9,
                to_seq: 10,
            },
        );
        assert!(matches!(&out[0].msg, PbftMsg::StateResponse { .. }));
    }

    #[test]
    fn snapshot_install_skips_the_pruned_prefix() {
        let mut donor = Replica::<BytesPayload>::new(1, 4);
        donor.set_checkpoint_interval(4);
        for seq in 1..=10 {
            decide_at(&mut donor, seq, &payload(format!("p{seq}").as_bytes()));
        }
        donor.take_decisions();
        stabilize_via_peers(&mut donor);
        let out = donor.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 10,
            },
        );
        let snapshot = out[0].msg.clone();
        // A fresh replica installs the snapshot: the pruned prefix is
        // skipped, only the delta is delivered, and the chained state
        // digest converges with the donor's.
        let mut r = Replica::<BytesPayload>::new(3, 4);
        r.set_checkpoint_interval(4);
        r.on_message(1, snapshot);
        assert_eq!(r.snapshots_installed(), 1);
        assert_eq!(r.state_entries_applied(), 2);
        assert_eq!(r.low_water_mark(), 8);
        assert_eq!(r.catch_up_gap(), None);
        let delivered = r.take_decisions();
        assert_eq!(
            delivered.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![9, 10]
        );
        assert_eq!(r.next_deliver(), 11);
        assert_eq!(r.state_digest(), donor.state_digest());
    }

    #[test]
    fn snapshot_at_the_gossiped_low_water_mark_still_installs() {
        // A freshly restarted replica can collect 2f + 1 of its peers'
        // gossiped CHECKPOINT votes before its first snapshot response
        // lands: the low-water mark advances while next_deliver is
        // still 1. The donor's snapshot at exactly that mark must
        // still INSTALL — the pruned prefix cannot be served verbatim
        // by anyone, so routing the response to the entry-by-entry
        // path would strand the replica in a catch-up loop forever.
        let mut donor = Replica::<BytesPayload>::new(1, 4);
        donor.set_checkpoint_interval(4);
        for seq in 1..=10 {
            decide_at(&mut donor, seq, &payload(format!("p{seq}").as_bytes()));
        }
        donor.take_decisions();
        stabilize_via_peers(&mut donor);
        let cp = donor.stable_checkpoint().expect("donor checkpoint").clone();

        let mut r = Replica::<BytesPayload>::new(3, 4);
        r.set_checkpoint_interval(4);
        for peer in [0, 1, 2] {
            r.on_message(
                peer,
                PbftMsg::Checkpoint {
                    seq: cp.seq,
                    state_digest: cp.state_digest,
                },
            );
        }
        assert_eq!(r.low_water_mark(), cp.seq, "gossip stabilized the mark");
        assert_eq!(r.next_deliver(), 1, "nothing delivered yet");

        let out = donor.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 10,
            },
        );
        r.on_message(1, out[0].msg.clone());
        assert_eq!(r.snapshots_installed(), 1, "snapshot must install");
        assert_eq!(r.state_entries_applied(), 2);
        assert_eq!(r.catch_up_gap(), None);
        let delivered = r.take_decisions();
        assert_eq!(
            delivered.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![9, 10]
        );
        assert_eq!(r.next_deliver(), 11);
        assert_eq!(r.state_digest(), donor.state_digest());
    }

    #[test]
    fn snapshot_with_bogus_attestation_is_rejected() {
        let mut liar = Replica::<BytesPayload>::new(1, 4);
        liar.set_checkpoint_interval(4);
        for seq in 1..=6 {
            decide_at(&mut liar, seq, &payload(format!("p{seq}").as_bytes()));
        }
        liar.take_decisions();
        stabilize_via_peers(&mut liar);
        liar.set_behavior(Behavior::StateGarbage);
        let out = liar.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 6,
            },
        );
        let snapshot = out[0].msg.clone();
        let mut r = Replica::<BytesPayload>::new(3, 4);
        r.set_checkpoint_interval(4);
        r.on_message(1, snapshot);
        assert!(r.state_rejections() >= 1, "bogus snapshot counted");
        assert_eq!(r.snapshots_installed(), 0);
        assert_eq!(r.next_deliver(), 1, "nothing installed");
    }

    #[test]
    fn snapshot_with_corrupt_delta_is_rejected_atomically() {
        let mut donor = Replica::<BytesPayload>::new(1, 4);
        donor.set_checkpoint_interval(4);
        for seq in 1..=6 {
            decide_at(&mut donor, seq, &payload(format!("p{seq}").as_bytes()));
        }
        donor.take_decisions();
        stabilize_via_peers(&mut donor);
        let out = donor.on_message(
            3,
            PbftMsg::StateRequest {
                from_seq: 1,
                to_seq: 6,
            },
        );
        let PbftMsg::SnapshotResponse {
            checkpoint_seq,
            checkpoint,
            mut entries,
        } = out[0].msg.clone()
        else {
            panic!("expected snapshot response");
        };
        // Corrupt the *last* delta certificate: unlike the streaming
        // state-response path, a snapshot must install all-or-nothing.
        entries.last_mut().unwrap().cert.digest.0[0] ^= 0xFF;
        let mut r = Replica::<BytesPayload>::new(3, 4);
        r.set_checkpoint_interval(4);
        r.on_message(
            1,
            PbftMsg::SnapshotResponse {
                checkpoint_seq,
                checkpoint,
                entries,
            },
        );
        assert_eq!(r.state_rejections(), 1);
        assert_eq!(r.snapshots_installed(), 0);
        assert_eq!(r.committed_log_len(), 0, "no partial install");
        assert_eq!(r.next_deliver(), 1);
    }

    #[test]
    fn checkpointing_disabled_replicas_stay_inert() {
        // With the default interval of 0 a replica ignores inbound
        // attestations entirely: nothing is voted, nothing is pruned.
        let mut r = Replica::<BytesPayload>::new(1, 4);
        for seq in 1..=4 {
            decide_at(&mut r, seq, &payload(format!("p{seq}").as_bytes()));
        }
        r.take_decisions();
        assert!(r.take_checkpoint_msgs().is_empty());
        let d = Digest::ZERO;
        for peer in [0, 2, 3] {
            r.on_message(
                peer,
                PbftMsg::Checkpoint {
                    seq: 4,
                    state_digest: d,
                },
            );
        }
        assert_eq!(r.low_water_mark(), 0);
        assert_eq!(r.committed_log_len(), 4, "nothing pruned");
        assert_eq!(r.checkpoints_stable(), 0);
    }

    #[test]
    fn stale_checkpoint_votes_below_the_mark_are_ignored() {
        let mut r = Replica::<BytesPayload>::new(1, 4);
        r.set_checkpoint_interval(4);
        for seq in 1..=8 {
            decide_at(&mut r, seq, &payload(format!("p{seq}").as_bytes()));
        }
        r.take_decisions();
        stabilize_via_peers(&mut r);
        assert_eq!(r.low_water_mark(), 8);
        let stable_before = r.checkpoints_stable();
        // A late quorum for the already-covered seq 4 must not regress
        // the low-water mark or count as a new stable checkpoint.
        for peer in [0, 2, 3] {
            r.on_message(
                peer,
                PbftMsg::Checkpoint {
                    seq: 4,
                    state_digest: Digest::ZERO,
                },
            );
        }
        assert_eq!(r.low_water_mark(), 8);
        assert_eq!(r.checkpoints_stable(), stable_before);
    }
}

//! The payload abstraction: what PBFT agrees on.

use curb_crypto::sha256::{digest_parts, Digest};

/// A value replicas can reach consensus on.
///
/// Curb instantiates this with transaction lists (intra-group consensus)
/// and blocks (final consensus).
pub trait Payload: Clone + PartialEq {
    /// Collision-resistant digest of the payload; prepares and commits
    /// reference this rather than the full payload.
    fn digest(&self) -> Digest;

    /// Approximate wire size in bytes, for delay/byte accounting.
    fn wire_size(&self) -> usize;
}

/// Payloads that can cross a real network boundary.
///
/// The sans-io consensus core never serialises payloads itself — the
/// simulator and the synchronous [`Cluster`](crate::Cluster) pass them
/// by value. A real transport (`curb-net`) additionally needs a byte
/// representation; implementing this trait is the only hook a payload
/// type must provide to run over TCP.
pub trait PayloadCodec: Sized {
    /// Appends this payload's byte representation to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Rebuilds a payload from the bytes written by
    /// [`PayloadCodec::encode_payload`]. Returns `None` on malformed
    /// input — implementations must never panic on attacker-controlled
    /// bytes.
    fn decode_payload(bytes: &[u8]) -> Option<Self>;
}

/// A trivial byte-vector payload, used by tests and benchmarks. The
/// [`Default`] value (empty bytes) doubles as the no-op filler that view
/// changes use for sequence holes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BytesPayload(pub Vec<u8>);

impl Payload for BytesPayload {
    fn digest(&self) -> Digest {
        digest_parts(&[b"bytes-payload", &self.0])
    }

    fn wire_size(&self) -> usize {
        self.0.len()
    }
}

impl PayloadCodec for BytesPayload {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        Some(BytesPayload(bytes.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_content_addressed() {
        assert_eq!(
            BytesPayload(vec![1, 2]).digest(),
            BytesPayload(vec![1, 2]).digest()
        );
        assert_ne!(
            BytesPayload(vec![1, 2]).digest(),
            BytesPayload(vec![2, 1]).digest()
        );
    }

    #[test]
    fn wire_size_is_length() {
        assert_eq!(BytesPayload(vec![0; 17]).wire_size(), 17);
    }

    #[test]
    fn codec_roundtrip() {
        let p = BytesPayload(vec![1, 2, 3, 255, 0]);
        let mut bytes = Vec::new();
        p.encode_payload(&mut bytes);
        assert_eq!(BytesPayload::decode_payload(&bytes), Some(p));
        assert_eq!(
            BytesPayload::decode_payload(&[]),
            Some(BytesPayload::default())
        );
    }
}

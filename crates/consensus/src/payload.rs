//! The payload abstraction: what PBFT agrees on.

use curb_crypto::sha256::{digest_parts, Digest};

/// A value replicas can reach consensus on.
///
/// Curb instantiates this with transaction lists (intra-group consensus)
/// and blocks (final consensus).
pub trait Payload: Clone + PartialEq {
    /// Collision-resistant digest of the payload; prepares and commits
    /// reference this rather than the full payload.
    fn digest(&self) -> Digest;

    /// Approximate wire size in bytes, for delay/byte accounting.
    fn wire_size(&self) -> usize;
}

/// A trivial byte-vector payload, used by tests and benchmarks. The
/// [`Default`] value (empty bytes) doubles as the no-op filler that view
/// changes use for sequence holes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BytesPayload(pub Vec<u8>);

impl Payload for BytesPayload {
    fn digest(&self) -> Digest {
        digest_parts(&[b"bytes-payload", &self.0])
    }

    fn wire_size(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_content_addressed() {
        assert_eq!(
            BytesPayload(vec![1, 2]).digest(),
            BytesPayload(vec![1, 2]).digest()
        );
        assert_ne!(
            BytesPayload(vec![1, 2]).digest(),
            BytesPayload(vec![2, 1]).digest()
        );
    }

    #[test]
    fn wire_size_is_length() {
        assert_eq!(BytesPayload(vec![0; 17]).wire_size(), 17);
    }
}

//! A Tendermint-style BFT core.
//!
//! The paper's second named alternative engine ("Curb can be
//! implemented with other BFT protocols including Tendermint and
//! HotStuff"). Tendermint's shape differs from both PBFT and HotStuff:
//! per-height *rounds* with a rotating proposer, two all-to-all voting
//! phases (prevote, precommit), explicit **nil votes** on timeout, and
//! the polka locking rule.
//!
//! Simplifications (per the repository's reproduction ground rules):
//! single-shot instances per sequence number (no chained blocks), vote
//! sets instead of signed vote aggregation, and timeout scheduling
//! delegated to the embedding (`start_view_change` = "my timeout
//! fired": prevote/precommit nil so the round can advance).

use crate::payload::Payload;
use crate::replica::{Behavior, NotLeader, ReplicaId, Seq};
use curb_crypto::sha256::Digest;
use std::collections::{BTreeMap, BTreeSet};

pub use crate::messages::Dest;

/// A Tendermint round number within one height (sequence).
pub type Round = u64;

/// A Tendermint protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum TendermintMsg<P> {
    /// The round's proposer announces a value.
    Proposal {
        /// Height (sequence number).
        seq: Seq,
        /// Round within the height.
        round: Round,
        /// Proposed value.
        payload: P,
    },
    /// First voting phase; `None` is a nil prevote.
    Prevote {
        /// Height.
        seq: Seq,
        /// Round.
        round: Round,
        /// Digest voted for, or nil.
        digest: Option<Digest>,
    },
    /// Second voting phase; `None` is a nil precommit.
    Precommit {
        /// Height.
        seq: Seq,
        /// Round.
        round: Round,
        /// Digest voted for, or nil.
        digest: Option<Digest>,
    },
}

impl<P: Payload> TendermintMsg<P> {
    /// Category label for message accounting.
    pub fn category(&self) -> &'static str {
        match self {
            TendermintMsg::Proposal { .. } => "TM-PROPOSAL",
            TendermintMsg::Prevote { .. } => "TM-PREVOTE",
            TendermintMsg::Precommit { .. } => "TM-PRECOMMIT",
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            TendermintMsg::Proposal { payload, .. } => 24 + payload.wire_size(),
            TendermintMsg::Prevote { .. } | TendermintMsg::Precommit { .. } => 56,
        }
    }
}

/// An outbound Tendermint message.
#[derive(Debug, Clone, PartialEq)]
pub struct TmOutbound<P> {
    /// Destination.
    pub dest: Dest,
    /// The message.
    pub msg: TendermintMsg<P>,
}

#[derive(Debug, Clone)]
struct TmInstance<P> {
    round: Round,
    /// The proposal seen for the current round.
    proposal: Option<(Digest, P)>,
    /// Any payload ever seen for this height (lets a later-round
    /// proposer re-propose even if it never locked).
    known: Option<(Digest, P)>,
    /// Polka lock: `(digest, payload, round)`.
    locked: Option<(Digest, P, Round)>,
    /// `(round, digest|nil) -> voters`, per phase.
    prevotes: BTreeMap<(Round, Option<Digest>), BTreeSet<ReplicaId>>,
    precommits: BTreeMap<(Round, Option<Digest>), BTreeSet<ReplicaId>>,
    sent_prevote: bool,
    sent_precommit: bool,
    decided: bool,
}

impl<P> Default for TmInstance<P> {
    fn default() -> Self {
        TmInstance {
            round: 0,
            proposal: None,
            known: None,
            locked: None,
            prevotes: BTreeMap::new(),
            precommits: BTreeMap::new(),
            sent_prevote: false,
            sent_precommit: false,
            decided: false,
        }
    }
}

/// A Tendermint replica with the same sans-I/O shape as
/// [`crate::Replica`].
///
/// # Examples
///
/// ```rust
/// use curb_consensus::tendermint::TmCluster;
/// use curb_consensus::BytesPayload;
///
/// let mut cluster = TmCluster::<BytesPayload>::new(4);
/// cluster.propose(BytesPayload(b"value".to_vec()));
/// cluster.run_to_quiescence();
/// for r in 0..4 {
///     assert_eq!(cluster.decisions(r).len(), 1);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TendermintReplica<P> {
    id: ReplicaId,
    n: usize,
    f: usize,
    next_seq: Seq,
    next_deliver: Seq,
    instances: BTreeMap<Seq, TmInstance<P>>,
    ready: BTreeMap<Seq, P>,
    behavior: Behavior,
}

impl<P: Payload + Default> TendermintReplica<P> {
    /// Creates replica `id` of a group of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n` or `n == 0`.
    pub fn new(id: ReplicaId, n: usize) -> Self {
        assert!(n > 0, "group must be non-empty");
        assert!(id < n, "replica id out of range");
        TendermintReplica {
            id,
            n,
            f: (n - 1) / 3,
            next_seq: 1,
            next_deliver: 1,
            instances: BTreeMap::new(),
            ready: BTreeMap::new(),
            behavior: Behavior::Honest,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Proposer of `round` (rotates round-robin; round 0 belongs to
    /// replica 0, the designated leader in a Curb group).
    pub fn proposer_of(&self, round: Round) -> ReplicaId {
        (round % self.n as u64) as ReplicaId
    }

    /// The active round of the next undecided height.
    fn active_round(&self) -> Round {
        self.instances
            .get(&self.next_deliver)
            .map(|i| i.round)
            .unwrap_or(0)
    }

    /// Whether this replica proposes at the next undecided height's
    /// current round.
    pub fn is_leader(&self) -> bool {
        self.proposer_of(self.active_round()) == self.id
    }

    /// Sets the fault-injection behaviour.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// Current behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    fn vote_digest(&self, digest: Digest) -> Option<Digest> {
        if self.behavior == Behavior::VoteGarbage {
            let mut d = digest;
            d.0[0] ^= 0xFF;
            d.0[31] ^= self.id as u8 ^ 0x3C;
            Some(d)
        } else {
            Some(digest)
        }
    }

    /// Proposes `payload` at the next sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeader`] if this replica is not the proposer of the
    /// active round.
    pub fn propose(&mut self, payload: P) -> Result<Vec<TmOutbound<P>>, NotLeader> {
        let round = self.active_round();
        if self.proposer_of(round) != self.id {
            return Err(NotLeader {
                leader: self.proposer_of(round),
            });
        }
        if self.behavior == Behavior::Silent {
            return Ok(Vec::new());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(self.lead_round(seq, payload))
    }

    fn lead_round(&mut self, seq: Seq, payload: P) -> Vec<TmOutbound<P>> {
        let digest = payload.digest();
        let round = self.instances.get(&seq).map(|i| i.round).unwrap_or(0);
        {
            let inst = self.instances.entry(seq).or_default();
            inst.proposal = Some((digest, payload.clone()));
            inst.known = Some((digest, payload.clone()));
            inst.sent_prevote = true;
            inst.prevotes
                .entry((round, Some(digest)))
                .or_default()
                .insert(self.id);
        }
        let mut out = vec![
            TmOutbound {
                dest: Dest::Broadcast,
                msg: TendermintMsg::Proposal {
                    seq,
                    round,
                    payload,
                },
            },
            TmOutbound {
                dest: Dest::Broadcast,
                msg: TendermintMsg::Prevote {
                    seq,
                    round,
                    digest: Some(digest),
                },
            },
        ];
        out.extend(self.check_tallies(seq));
        out
    }

    /// Handles a message from `from`.
    pub fn on_message(&mut self, from: ReplicaId, msg: TendermintMsg<P>) -> Vec<TmOutbound<P>> {
        if self.behavior == Behavior::Silent {
            return Vec::new();
        }
        match msg {
            TendermintMsg::Proposal {
                seq,
                round,
                payload,
            } => self.on_proposal(from, seq, round, payload),
            TendermintMsg::Prevote { seq, round, digest } => {
                self.on_prevote(from, seq, round, digest)
            }
            TendermintMsg::Precommit { seq, round, digest } => {
                self.on_precommit(from, seq, round, digest)
            }
        }
    }

    fn on_proposal(
        &mut self,
        from: ReplicaId,
        seq: Seq,
        round: Round,
        payload: P,
    ) -> Vec<TmOutbound<P>> {
        if from != self.proposer_of(round) || seq < self.next_deliver {
            return Vec::new();
        }
        let digest = payload.digest();
        // Tendermint prevote rule: vote for the proposal unless locked
        // on a different value.
        let vote = {
            let inst = self.instances.entry(seq).or_default();
            if inst.decided || round < inst.round || inst.sent_prevote && round == inst.round {
                return Vec::new();
            }
            if round > inst.round {
                // Catch up to the proposal's round.
                inst.round = round;
                inst.sent_prevote = false;
                inst.sent_precommit = false;
                inst.proposal = None;
            }
            inst.proposal = Some((digest, payload.clone()));
            inst.known = Some((digest, payload));
            inst.sent_prevote = true;
            match &inst.locked {
                Some((locked_digest, _, _)) if *locked_digest != digest => None, // nil
                _ => Some(digest),
            }
        };
        let vote = match vote {
            Some(d) => self.vote_digest(d),
            None => None,
        };
        // Record own prevote.
        let id = self.id;
        let inst = self.instances.get_mut(&seq).expect("created above");
        inst.prevotes.entry((round, vote)).or_default().insert(id);
        let mut out = vec![TmOutbound {
            dest: Dest::Broadcast,
            msg: TendermintMsg::Prevote {
                seq,
                round,
                digest: vote,
            },
        }];
        out.extend(self.check_tallies(seq));
        out
    }

    fn on_prevote(
        &mut self,
        from: ReplicaId,
        seq: Seq,
        round: Round,
        digest: Option<Digest>,
    ) -> Vec<TmOutbound<P>> {
        if seq < self.next_deliver {
            return Vec::new();
        }
        let inst = self.instances.entry(seq).or_default();
        inst.prevotes
            .entry((round, digest))
            .or_default()
            .insert(from);
        self.check_tallies(seq)
    }

    fn on_precommit(
        &mut self,
        from: ReplicaId,
        seq: Seq,
        round: Round,
        digest: Option<Digest>,
    ) -> Vec<TmOutbound<P>> {
        if seq < self.next_deliver {
            return Vec::new();
        }
        let inst = self.instances.entry(seq).or_default();
        inst.precommits
            .entry((round, digest))
            .or_default()
            .insert(from);
        self.check_tallies(seq)
    }

    /// Applies the polka/decide/advance rules after any tally change.
    fn check_tallies(&mut self, seq: Seq) -> Vec<TmOutbound<P>> {
        let quorum = self.quorum();
        let id = self.id;
        let garbage = self.behavior == Behavior::VoteGarbage;
        let mut out = Vec::new();
        loop {
            let Some(inst) = self.instances.get_mut(&seq) else {
                return out;
            };
            if inst.decided {
                return out;
            }
            let round = inst.round;
            // Polka → precommit (+ lock).
            if !inst.sent_precommit {
                let polka: Option<Option<Digest>> = inst
                    .prevotes
                    .iter()
                    .find(|(&(r, _), voters)| r == round && voters.len() >= quorum)
                    .map(|(&(_, d), _)| d);
                if let Some(polka_digest) = polka {
                    inst.sent_precommit = true;
                    let vote = match polka_digest {
                        Some(d) => {
                            // Lock if we actually hold the value.
                            if let Some((kd, kp)) = inst.known.clone() {
                                if kd == d {
                                    inst.locked = Some((kd, kp, round));
                                }
                            }
                            if garbage {
                                let mut g = d;
                                g.0[0] ^= 0xFF;
                                g.0[31] ^= id as u8 ^ 0x3C;
                                Some(g)
                            } else {
                                Some(d)
                            }
                        }
                        None => None,
                    };
                    inst.precommits.entry((round, vote)).or_default().insert(id);
                    out.push(TmOutbound {
                        dest: Dest::Broadcast,
                        msg: TendermintMsg::Precommit {
                            seq,
                            round,
                            digest: vote,
                        },
                    });
                    continue; // tallies changed
                }
            }
            // Decide on 2f+1 precommits for a value we hold.
            let decided_digest: Option<Digest> = inst
                .precommits
                .iter()
                .find(|(&(r, d), voters)| r == round && d.is_some() && voters.len() >= quorum)
                .and_then(|(&(_, d), _)| d);
            if let Some(d) = decided_digest {
                if let Some((kd, kp)) = inst.known.clone() {
                    if kd == d {
                        inst.decided = true;
                        self.ready.insert(seq, kp);
                        return out;
                    }
                }
            }
            // Advance round on 2f+1 nil precommits.
            let nil_quorum = inst
                .precommits
                .get(&(round, None))
                .is_some_and(|v| v.len() >= quorum);
            if nil_quorum {
                inst.round += 1;
                inst.sent_prevote = false;
                inst.sent_precommit = false;
                inst.proposal = None;
                let new_round = inst.round;
                // The next proposer re-proposes the locked (or any
                // known) value.
                let repropose = inst
                    .locked
                    .clone()
                    .map(|(_, p, _)| p)
                    .or_else(|| inst.known.clone().map(|(_, p)| p));
                let i_propose = (new_round % self.n as u64) as ReplicaId == id;
                if i_propose {
                    if let Some(p) = repropose {
                        out.extend(self.lead_round(seq, p));
                    }
                }
                continue;
            }
            return out;
        }
    }

    /// Timeout: precommit nil for the active round of every undecided
    /// height, so the round can advance past a faulty proposer.
    pub fn start_view_change(&mut self) -> Vec<TmOutbound<P>> {
        if self.behavior == Behavior::Silent {
            return Vec::new();
        }
        let id = self.id;
        let seqs: Vec<Seq> = self
            .instances
            .iter()
            .filter(|(_, i)| !i.decided)
            .map(|(&s, _)| s)
            .collect();
        let mut out = Vec::new();
        for seq in seqs {
            let inst = self.instances.get_mut(&seq).expect("listed above");
            if inst.sent_precommit {
                continue;
            }
            let round = inst.round;
            inst.sent_precommit = true;
            inst.sent_prevote = true;
            inst.precommits.entry((round, None)).or_default().insert(id);
            out.push(TmOutbound {
                dest: Dest::Broadcast,
                msg: TendermintMsg::Precommit {
                    seq,
                    round,
                    digest: None,
                },
            });
            out.extend(self.check_tallies(seq));
        }
        out
    }

    /// Drains decided payloads in sequence order, exactly once.
    pub fn take_decisions(&mut self) -> Vec<(Seq, P)> {
        let mut out = Vec::new();
        while let Some(p) = self.ready.remove(&self.next_deliver) {
            out.push((self.next_deliver, p));
            self.instances.remove(&self.next_deliver);
            self.next_deliver += 1;
        }
        out
    }
}

/// Synchronous harness for Tendermint groups, mirroring
/// [`crate::Cluster`].
#[derive(Debug, Clone)]
pub struct TmCluster<P: Payload> {
    replicas: Vec<TendermintReplica<P>>,
    queue: std::collections::VecDeque<(ReplicaId, ReplicaId, TendermintMsg<P>)>,
    logs: Vec<Vec<(Seq, P)>>,
    sent: BTreeMap<&'static str, u64>,
}

impl<P: Payload + Default> TmCluster<P> {
    /// Creates a cluster of `n` honest replicas.
    pub fn new(n: usize) -> Self {
        TmCluster {
            replicas: (0..n).map(|i| TendermintReplica::new(i, n)).collect(),
            queue: std::collections::VecDeque::new(),
            logs: vec![Vec::new(); n],
            sent: BTreeMap::new(),
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Sets replica `r`'s behaviour.
    pub fn set_behavior(&mut self, r: ReplicaId, behavior: Behavior) {
        self.replicas[r].set_behavior(behavior);
    }

    /// Access to replica `r`.
    pub fn replica(&self, r: ReplicaId) -> &TendermintReplica<P> {
        &self.replicas[r]
    }

    /// Proposes at whichever replica currently holds proposer duty.
    /// (A silent fault-injected proposer produces nothing; the next
    /// candidate is tried, mirroring how every Curb controller checks
    /// its own leadership independently.)
    pub fn propose(&mut self, payload: P) {
        for r in 0..self.n() {
            if !self.replicas[r].is_leader() {
                continue;
            }
            if let Ok(out) = self.replicas[r].propose(payload.clone()) {
                if !out.is_empty() {
                    self.enqueue(r, out);
                    self.drain(r);
                    return;
                }
            }
        }
    }

    /// Fires replica `r`'s timeout.
    pub fn trigger_timeout(&mut self, r: ReplicaId) {
        let out = self.replicas[r].start_view_change();
        self.enqueue(r, out);
        self.drain(r);
    }

    /// Delivers all queued messages (FIFO). Returns the count.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut delivered = 0;
        while let Some((from, to, msg)) = self.queue.pop_front() {
            delivered += 1;
            let out = self.replicas[to].on_message(from, msg);
            self.enqueue(to, out);
            self.drain(to);
        }
        delivered
    }

    /// The decision log of replica `r`.
    pub fn decisions(&self, r: ReplicaId) -> &[(Seq, P)] {
        &self.logs[r]
    }

    /// Total messages sent.
    pub fn total_messages(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Agreement over honest replicas.
    pub fn agreement_holds(&self) -> bool {
        for seq in 0..64u64 {
            let mut value: Option<&P> = None;
            for r in 0..self.n() {
                if self.replicas[r].behavior() != Behavior::Honest {
                    continue;
                }
                if let Some((_, p)) = self.logs[r].iter().find(|(s, _)| *s == seq) {
                    match value {
                        None => value = Some(p),
                        Some(v) if v == p => {}
                        Some(_) => return false,
                    }
                }
            }
        }
        true
    }

    fn enqueue(&mut self, from: ReplicaId, out: Vec<TmOutbound<P>>) {
        for TmOutbound { dest, msg } in out {
            *self.sent.entry(msg.category()).or_insert(0) += match dest {
                Dest::Broadcast => (self.n() - 1) as u64,
                Dest::To(_) => 1,
            };
            match dest {
                Dest::Broadcast => {
                    for to in 0..self.n() {
                        if to != from {
                            self.queue.push_back((from, to, msg.clone()));
                        }
                    }
                }
                Dest::To(to) => self.queue.push_back((from, to, msg)),
            }
        }
    }

    fn drain(&mut self, r: ReplicaId) {
        let decided = self.replicas[r].take_decisions();
        self.logs[r].extend(decided);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::BytesPayload;

    fn p(b: &[u8]) -> BytesPayload {
        BytesPayload(b.to_vec())
    }

    #[test]
    fn four_honest_replicas_decide() {
        let mut c = TmCluster::new(4);
        c.propose(p(b"v"));
        c.run_to_quiescence();
        for r in 0..4 {
            assert_eq!(c.decisions(r), &[(1, p(b"v"))], "replica {r}");
        }
        assert!(c.agreement_holds());
    }

    #[test]
    fn sequences_decide_in_order() {
        let mut c = TmCluster::new(7);
        for i in 0..4u8 {
            c.propose(p(&[i]));
        }
        c.run_to_quiescence();
        for r in 0..7 {
            let seqs: Vec<Seq> = c.decisions(r).iter().map(|(s, _)| *s).collect();
            assert_eq!(seqs, vec![1, 2, 3, 4], "replica {r}");
        }
    }

    #[test]
    fn f_silent_backups_tolerated() {
        let mut c = TmCluster::new(4);
        c.set_behavior(2, Behavior::Silent);
        c.propose(p(b"v"));
        c.run_to_quiescence();
        for r in [0usize, 1, 3] {
            assert_eq!(c.decisions(r).len(), 1, "replica {r}");
        }
    }

    #[test]
    fn garbage_voters_tolerated() {
        let mut c = TmCluster::new(7);
        c.set_behavior(3, Behavior::VoteGarbage);
        c.set_behavior(6, Behavior::VoteGarbage);
        c.propose(p(b"v"));
        c.run_to_quiescence();
        for r in [0usize, 1, 2, 4, 5] {
            assert_eq!(c.decisions(r).len(), 1, "replica {r}");
        }
        assert!(c.agreement_holds());
    }

    #[test]
    fn silent_proposer_rotated_past_by_nil_round() {
        let mut c = TmCluster::new(4);
        c.set_behavior(0, Behavior::Silent);
        // Give every honest replica an instance to time out on: the
        // embedding would have seen the request; here we simulate the
        // timeout directly (nil precommits for round 0 of height 1).
        for r in 1..4 {
            // Create the instance implicitly via a nil prevote exchange:
            // replicas time out without ever seeing a proposal.
            c.replicas[r].instances.entry(1).or_default();
            c.trigger_timeout(r);
        }
        c.run_to_quiescence();
        // Nil quorum advanced everyone to round 1, whose proposer is
        // replica 1.
        for r in 1..4 {
            assert_eq!(c.replicas[r].instances[&1].round, 1, "replica {r}");
        }
        assert!(c.replicas[1].is_leader());
        // Replica 1 now proposes and the group decides.
        c.propose(p(b"recovered"));
        c.run_to_quiescence();
        for r in 1..4 {
            assert_eq!(c.decisions(r), &[(1, p(b"recovered"))], "replica {r}");
        }
    }

    #[test]
    fn locked_value_survives_round_change() {
        let mut c = TmCluster::new(4);
        c.propose(p(b"locked"));
        // Deliver proposals + prevotes so a polka forms and replicas
        // precommit/lock, then drop the precommit deliveries.
        for _ in 0..12 {
            if let Some((from, to, msg)) = c.queue.pop_front() {
                let out = c.replicas[to].on_message(from, msg);
                c.enqueue(to, out);
                c.drain(to);
            }
        }
        c.queue.clear();
        let locked_somewhere = (0..4).any(|r| {
            c.replicas[r]
                .instances
                .get(&1)
                .is_some_and(|i| i.locked.is_some())
        });
        assert!(locked_somewhere, "setup: a lock must exist");
        // Time everyone out; round advances; the next proposer must
        // re-propose the locked value.
        for r in 0..4 {
            c.trigger_timeout(r);
        }
        c.run_to_quiescence();
        for r in 0..4 {
            if let Some((_, v)) = c.decisions(r).first() {
                assert_eq!(v, &p(b"locked"), "replica {r}");
            }
        }
        assert!(c.agreement_holds());
    }

    #[test]
    fn proposer_rotates_with_rounds() {
        let r = TendermintReplica::<BytesPayload>::new(0, 4);
        assert_eq!(r.proposer_of(0), 0);
        assert_eq!(r.proposer_of(1), 1);
        assert_eq!(r.proposer_of(5), 1);
    }

    #[test]
    fn non_proposer_rejected() {
        let mut r = TendermintReplica::<BytesPayload>::new(2, 4);
        assert!(r.propose(p(b"x")).is_err());
    }

    #[test]
    fn single_replica_group() {
        let mut c = TmCluster::new(1);
        c.propose(p(b"solo"));
        c.run_to_quiescence();
        assert_eq!(c.decisions(0), &[(1, p(b"solo"))]);
    }
}

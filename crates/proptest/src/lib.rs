//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest's surface that its test suites use:
//! the [`proptest!`] macro, integer/range/array/tuple/vec strategies,
//! [`sample::Index`], the `prop_assert*` / [`prop_assume!`] macros and
//! [`ProptestConfig`]. Sampling is purely random (seeded
//! deterministically per test from the test's module path, so runs are
//! reproducible). Failures are **greedily shrunk**: every strategy can
//! propose smaller variants of a failing value
//! ([`Strategy::shrink`] — integers halve toward their lower bound,
//! vectors truncate and shrink element-wise, tuples shrink one
//! component at a time), and the runner repeatedly adopts the first
//! variant that still fails until none does, reporting that local
//! minimum alongside the original failure.
//!
//! The number of cases per test defaults to [`DEFAULT_CASES`] and can
//! be overridden per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally
//! with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom};

/// Default number of cases per property when no config is given.
pub const DEFAULT_CASES: u32 = 64;

/// Configuration for a `proptest!` block (subset of the real crate's
/// `test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to run, honouring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) => n,
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions (`prop_assume!`) were not met; it is
    /// skipped without counting as a failure.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with `msg` as the report.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic splitmix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (the test's path).
    pub fn for_test(label: &str) -> Self {
        // FNV-1a over the label gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
    /// Proposes strictly "smaller" variants of a failing `value`, best
    /// candidates first. The runner greedily adopts the first variant
    /// that still fails the property, so candidates must make real
    /// progress (each eventually exhausts) or shrinking would loop.
    /// The default proposes nothing, which disables shrinking for the
    /// strategy.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Smaller variants of `self` for shrinking (see
    /// [`Strategy::shrink`]); empty by default.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Strategy for the full value range of `T` (`any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        Arbitrary::shrink(value)
    }
}

/// Shrink candidates for an unsigned value above `floor`: the floor
/// itself (biggest jump first), halfway down, and one step down.
macro_rules! shrink_uint_toward {
    ($v:expr, $floor:expr) => {{
        let (v, floor) = ($v, $floor);
        let mut out = Vec::new();
        if v > floor {
            out.push(floor);
            let mid = floor + (v - floor) / 2;
            if mid != floor && mid != v {
                out.push(mid);
            }
            if v - 1 != floor {
                out.push(v - 1);
            }
        }
        out
    }};
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self) -> Vec<$t> {
                shrink_uint_toward!(*self, 0)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
    fn shrink(&self) -> Vec<u128> {
        shrink_uint_toward!(*self, 0)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_uint_toward!(*value, self.start)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u64;
                // `span` may be u64::MAX for 64-bit types; saturate the
                // increment instead of overflowing.
                let inc = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                self.start.saturating_add(inc as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_uint_toward!(*value, self.start)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
    fn shrink(&self, value: &u128) -> Vec<u128> {
        shrink_uint_toward!(*value, self.start)
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        let span = u128::MAX - self.start;
        let inc = if span == u128::MAX {
            rng.next_u128()
        } else {
            rng.next_u128() % (span + 1)
        };
        self.start.saturating_add(inc)
    }
    fn shrink(&self, value: &u128) -> Vec<u128> {
        shrink_uint_toward!(*value, self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, keeping the rest fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$i.shrink(&value.$i) {
                        let mut variant = value.clone();
                        variant.$i = candidate;
                        out.push(variant);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

/// Weighted index selection, mirroring `proptest::sample`.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use
    /// time (`index.index(len)` maps it into `0..len`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps this index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
        fn shrink(&self) -> Vec<Index> {
            Arbitrary::shrink(&self.0).into_iter().map(Index).collect()
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.size.start;
            if value.len() > min {
                // Cut hard first (fast progress), then by one.
                let half = min.max(value.len() / 2);
                if half < value.len() - 1 {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Element-wise, each position in place.
            for (i, element) in value.iter().enumerate() {
                for candidate in self.element.shrink(element) {
                    let mut variant = value.clone();
                    variant[i] = candidate;
                    out.push(variant);
                }
            }
            out
        }
    }
}

/// Safety valve: greedy shrinking adopts at most this many successive
/// smaller counterexamples before reporting whatever it reached.
const MAX_SHRINK_STEPS: usize = 4096;

/// Greedily shrinks a failing `value`: repeatedly asks `strategy` for
/// smaller variants and adopts the first one on which `run` still
/// fails, until no variant fails (a local minimum) or
/// [`MAX_SHRINK_STEPS`] is hit. Returns the minimal value, its failure
/// message and the number of shrink steps taken. Variants that pass or
/// are rejected (`prop_assume!`) are simply not adopted.
pub fn shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    run: &mut F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0;
    while steps < MAX_SHRINK_STEPS {
        let mut advanced = false;
        for candidate in strategy.shrink(&value) {
            if let Err(TestCaseError::Fail(candidate_msg)) = run(candidate.clone()) {
                value = candidate;
                msg = candidate_msg;
                steps += 1;
                advanced = true;
                break; // restart shrinking from the smaller value
            }
        }
        if !advanced {
            break;
        }
    }
    (value, msg, steps)
}

/// Runs `cases` random samples of `strategy` through `run`, shrinking
/// and panicking on the first failure. This is the engine behind the
/// [`proptest!`] macro; it is public so tests can drive properties
/// programmatically.
///
/// # Panics
///
/// Panics with the shrunk counterexample when a case fails.
pub fn check<S, F>(name: &str, cases: u32, strategy: &S, mut run: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    for case in 0..cases {
        let value = strategy.sample(&mut rng);
        match run(value.clone()) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, minimal_msg, steps) = shrink_failure(strategy, value, msg, &mut run);
                panic!(
                    "property `{name}` failed at case {case}:\n{minimal_msg}\n\
                     minimal counterexample ({steps} shrink steps): {minimal:?}"
                );
            }
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::sample::Index` etc. resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($lhs), stringify!($rhs), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($lhs), stringify!($rhs), l, format!($($fmt)*)
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs against `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($(($strat),)+);
            $crate::check(
                concat!(module_path!(), "::", stringify!($name)),
                config.effective_cases(),
                &strategy,
                |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = crate::TestRng::for_test("range");
        for _ in 0..1000 {
            let v = Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::for_test("vec");
        for _ in 0..100 {
            let v = Strategy::sample(&prop::collection::vec(any::<u8>(), 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(a in 0u64..100, b in any::<u32>(), idx in any::<prop::sample::Index>()) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b as u64, b as u64 + a);
            prop_assert_ne!(a, 100, "a was {}", a);
            let _ = idx.index(10);
        }
    }

    #[test]
    fn shrinking_finds_minimal_integer_counterexample() {
        // Property: v < 10. Greedy shrinking from any failing start
        // must land exactly on the boundary value 10 — halving jumps
        // below 10 pass and are not adopted, so the walk converges.
        let strategy = 0u64..1000;
        let mut run = |v: u64| {
            if v >= 10 {
                Err(TestCaseError::fail(format!("{v} >= 10")))
            } else {
                Ok(())
            }
        };
        for start in [10u64, 11, 77, 500, 999] {
            let (minimal, msg, steps) =
                crate::shrink_failure(&strategy, start, format!("{start} >= 10"), &mut run);
            assert_eq!(minimal, 10, "from start {start}");
            assert_eq!(msg, "10 >= 10", "message must track the adopted value");
            assert_eq!(steps == 0, start == 10);
        }
    }

    #[test]
    fn shrinking_respects_the_range_lower_bound() {
        // Everything fails: the minimum must be the range's start, not 0.
        let strategy = 42u64..1000;
        let mut run = |_: u64| Err(TestCaseError::fail("always"));
        let (minimal, _, _) = crate::shrink_failure(&strategy, 700, String::new(), &mut run);
        assert_eq!(minimal, 42);
    }

    #[test]
    fn shrinking_minimises_vectors_in_length_and_elements() {
        // Property: len < 3. The minimal counterexample is a length-3
        // vector of zeros — truncation stops at the boundary, then
        // element-wise shrinking zeroes the survivors.
        let strategy = prop::collection::vec(any::<u8>(), 0..10);
        let mut run = |v: Vec<u8>| {
            if v.len() >= 3 {
                Err(TestCaseError::fail(format!("len {}", v.len())))
            } else {
                Ok(())
            }
        };
        let start = vec![9u8, 9, 9, 9, 9, 9];
        let (minimal, _, _) = crate::shrink_failure(&strategy, start, String::new(), &mut run);
        assert_eq!(minimal, vec![0u8, 0, 0]);
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let strategy = (0u64..100, 0u64..100);
        let mut run = |(a, b): (u64, u64)| {
            if a + b >= 10 {
                Err(TestCaseError::fail("sum too big"))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = crate::shrink_failure(&strategy, (50, 60), String::new(), &mut run);
        // A local minimum for a + b >= 10 keeps the sum exactly 10.
        assert_eq!(minimal.0 + minimal.1, 10);
    }

    // Not a #[test]: invoked through catch_unwind below to check the
    // panic message the macro produces on a failing property.
    proptest! {
        fn deliberately_failing_property(v in 0u64..1000) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn macro_reports_shrunk_counterexample() {
        let panic = std::panic::catch_unwind(deliberately_failing_property)
            .expect_err("property must fail");
        let msg = panic
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(
            msg.contains("minimal counterexample"),
            "missing shrink report: {msg}"
        );
        assert!(msg.contains("(10,)"), "not shrunk to the boundary: {msg}");
    }
}

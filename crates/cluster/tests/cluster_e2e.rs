//! End-to-end cluster tests: the full 4-step round workflow over real
//! loopback TCP — PACKET_IN → intra-group PBFT → final-committee
//! block → REPLY — including the lying-controller byzantine scenario
//! and live RE-ASS.

use curb_cluster::{AgentEvent, Cluster, ClusterConfig, NodeBehavior};
use curb_core::{ConfigData, SwitchId};
use curb_graph::synthetic;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Watchdog: fail loudly instead of hanging CI if the cluster
/// deadlocks.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("cluster test deadlocked");
}

/// A config whose CAP model is always feasible on a random synthetic
/// topology (no delay bound surprises) and whose capacity forces the
/// requested group structure.
fn test_config(capacity: u32, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.curb.seed = seed;
    cfg.curb.max_cs_delay_ms = 1e9;
    cfg.curb.max_cc_delay_ms = None;
    cfg.curb.controller_capacity = capacity;
    cfg.request_timeout = Duration::from_secs(2);
    cfg
}

/// Drains agent events without discarding them, so a milestone that
/// raced ahead of the one currently waited on is still observable.
struct EventLog<'a> {
    rx: &'a Receiver<(SwitchId, AgentEvent)>,
    seen: Vec<(SwitchId, AgentEvent)>,
}

impl<'a> EventLog<'a> {
    fn new(cluster: &'a Cluster) -> Self {
        EventLog {
            rx: &cluster.events,
            seen: Vec::new(),
        }
    }

    /// Waits until `pred` holds over everything seen so far; returns
    /// whether it did before the deadline.
    fn wait_until<F: FnMut(&[(SwitchId, AgentEvent)]) -> bool>(
        &mut self,
        secs: u64,
        mut pred: F,
    ) -> bool {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            if pred(&self.seen) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            match self.rx.recv_timeout(Duration::from_millis(100)) {
                Ok(ev) => self.seen.push(ev),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return pred(&self.seen),
            }
        }
    }

    fn accepted_count(&self, switch: SwitchId) -> usize {
        self.seen
            .iter()
            .filter(|(s, e)| *s == switch && matches!(e, AgentEvent::Accepted { .. }))
            .count()
    }
}

#[test]
fn single_group_commits_flow_mods_end_to_end() {
    with_deadline(60, || {
        let topo = synthetic(4, 1, 11);
        let cluster = Cluster::launch(&topo, test_config(4, 1)).expect("launch");
        assert_eq!(cluster.epoch0.group_count(), 1);

        cluster.pkt_in(SwitchId(0), 0);
        let mut log = EventLog::new(&cluster);
        assert!(
            log.wait_until(30, |seen| seen
                .iter()
                .any(|(_, e)| matches!(e, AgentEvent::Accepted { .. }))),
            "request must commit end-to-end"
        );
        let config = log
            .seen
            .iter()
            .find_map(|(_, e)| match e {
                AgentEvent::Accepted { config, .. } => Some(config.clone()),
                _ => None,
            })
            .unwrap();
        assert!(
            matches!(config, ConfigData::FlowRules(ref rules) if !rules.is_empty()),
            "PKT-IN must commit flow rules, got {config:?}"
        );
        // The flow rules were installed at the agent.
        assert!(
            cluster.agents[0]
                .probe
                .flows
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        // The round is on-chain on at least one node.
        assert!(cluster.max_height() >= 1);
        cluster.shutdown();
    });
}

/// Satellite: the lying-controller scenario. One group member sends
/// corrupted REPLYs; the agent still accepts on `f + 1` identical
/// honest replies and records the liar as byzantine evidence.
#[test]
fn lying_controller_is_outvoted_and_recorded() {
    with_deadline(60, || {
        let topo = synthetic(4, 1, 13);
        let mut cfg = test_config(4, 2);
        let liar = 2;
        cfg.behaviors = vec![NodeBehavior::Honest; 4];
        cfg.behaviors[liar] = NodeBehavior::Lying;
        let cluster = Cluster::launch(&topo, cfg).expect("launch");
        assert!(
            cluster.epoch0.ctrl_list(SwitchId(0)).contains(&liar),
            "test premise: the liar serves the switch"
        );

        cluster.pkt_in(SwitchId(0), 0);
        let mut log = EventLog::new(&cluster);
        // f + 1 identical honest replies beat the liar, and the
        // contradiction becomes byzantine evidence.
        assert!(
            log.wait_until(40, |seen| {
                seen.iter()
                    .any(|(_, e)| matches!(e, AgentEvent::Accepted { .. }))
                    && seen
                        .iter()
                        .any(|(_, e)| matches!(e, AgentEvent::Byzantine { .. }))
            }),
            "honest quorum must accept and the liar must be flagged; saw {:?}",
            log.seen
        );
        for (_, event) in &log.seen {
            match event {
                AgentEvent::Accepted { config, .. } => assert!(
                    !matches!(config, ConfigData::FlowRules(rules)
                        if rules.iter().any(|r| r.out_port == 0xBAD)),
                    "the corrupted config must never be accepted"
                ),
                AgentEvent::Byzantine { accused } => assert_eq!(accused, &vec![liar]),
                _ => {}
            }
        }
        cluster.shutdown();
    });
}

/// The tentpole acceptance scenario: two disjoint groups, a byzantine
/// controller in one of them, live RE-ASS — the liar is excluded by a
/// committed reassignment, agents re-home, and commits continue in
/// the new epoch without halting the other group.
#[test]
fn multi_group_reass_excludes_liar_and_commits_continue() {
    with_deadline(180, || {
        // 12 controllers / capacity 1 force two disjoint groups of 4
        // and leave spares for the reassignment to draw on.
        let topo = synthetic(12, 2, 17);
        let mut cfg = test_config(1, 3);
        let cluster = Cluster::launch(&topo, cfg.clone()).expect("probe launch");
        assert!(
            cluster.epoch0.group_count() >= 2,
            "need two distinct groups"
        );
        // Pick a *non-leader* member of switch 0's group as the liar
        // (a lying leader is also detected, but a non-leader keeps
        // this test focused on REPLY matching, not proposal duty).
        let g0 = cluster.epoch0.ctrl_list(SwitchId(0)).to_vec();
        let leader = cluster.epoch0.groups[cluster.epoch0.group_of(SwitchId(0)).0].leader();
        let liar = *g0
            .iter()
            .find(|&&c| c != leader)
            .expect("non-leader member");
        cluster.shutdown();

        cfg.behaviors = vec![NodeBehavior::Honest; 12];
        cfg.behaviors[liar] = NodeBehavior::Lying;
        let cluster = Cluster::launch(&topo, cfg).expect("launch");
        let mut log = EventLog::new(&cluster);

        // Round 1: both groups commit despite the liar, and the
        // liar's contradictions trigger a live RE-ASS.
        cluster.pkt_in(SwitchId(0), 1);
        cluster.pkt_in(SwitchId(1), 0);
        assert!(
            log.wait_until(60, |seen| {
                let a0 = seen
                    .iter()
                    .any(|(s, e)| s.0 == 0 && matches!(e, AgentEvent::Accepted { .. }));
                let a1 = seen
                    .iter()
                    .any(|(s, e)| s.0 == 1 && matches!(e, AgentEvent::Accepted { .. }));
                let reass = seen.iter().any(|(_, e)| {
                    matches!(e, AgentEvent::ReassIssued { accused, .. }
                        if accused.contains(&liar))
                });
                a0 && a1 && reass
            }),
            "both groups must commit and RE-ASS must fire against the liar; saw {:?}",
            log.seen
        );

        // The committed NewAssignment re-homes switch 0's agent onto a
        // group without the liar.
        assert!(
            log.wait_until(60, |seen| seen
                .iter()
                .any(|(s, e)| s.0 == 0 && matches!(e, AgentEvent::EpochAdopted { .. }))),
            "the reassignment must commit and be adopted; saw {:?}",
            log.seen
        );
        let ctrl_list = log
            .seen
            .iter()
            .rev()
            .find_map(|(s, e)| match e {
                AgentEvent::EpochAdopted { ctrl_list } if s.0 == 0 => Some(ctrl_list.clone()),
                _ => None,
            })
            .unwrap();
        assert!(
            !ctrl_list.contains(&liar),
            "the committed reassignment must exclude the liar, got {ctrl_list:?}"
        );
        assert!(cluster.max_epoch() >= 1, "nodes must rotate the epoch");

        // Commits continue across the epoch boundary, in both groups.
        let height_before = cluster.max_height();
        let (base0, base1) = (
            log.accepted_count(SwitchId(0)),
            log.accepted_count(SwitchId(1)),
        );
        cluster.pkt_in(SwitchId(0), 3);
        cluster.pkt_in(SwitchId(1), 2);
        assert!(
            log.wait_until(90, |seen| {
                let count = |sw: usize| {
                    seen.iter()
                        .filter(|(s, e)| s.0 == sw && matches!(e, AgentEvent::Accepted { .. }))
                        .count()
                };
                count(0) > base0 && count(1) > base1
            }),
            "commits must continue after RE-ASS; saw {:?}",
            log.seen
        );
        assert!(cluster.max_height() > height_before);
        cluster.shutdown();
    });
}

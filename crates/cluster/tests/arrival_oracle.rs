//! Oracle tests for the open-loop arrival generator: over a long
//! horizon the empirical rate must match the configured rate, and the
//! stream must be a pure function of the seed.

use curb_cluster::{ArrivalGen, ArrivalProcess};
use curb_crypto::rng::DetRng;

const GAPS: usize = 10_000;

fn mean_gap_ns(process: ArrivalProcess, rate_hz: f64, seed: u64) -> f64 {
    let mut gen = ArrivalGen::new(process, rate_hz, DetRng::new(seed));
    let total: u64 = (0..GAPS).map(|_| gen.next_gap_ns()).sum();
    total as f64 / GAPS as f64
}

/// 10k Poisson gaps at 200 Hz: the empirical mean rate lands within 2%
/// of the configured rate (the CLT bound for an exponential at n=10k
/// is ~1% per sigma, so 2% holds with margin for any fixed seed).
#[test]
fn poisson_mean_rate_within_two_percent() {
    for seed in [1u64, 42, 1234, 0xDEAD_BEEF] {
        let rate_hz = 200.0;
        let mean = mean_gap_ns(ArrivalProcess::Poisson, rate_hz, seed);
        let expected = 1e9 / rate_hz;
        let err = (mean - expected).abs() / expected;
        assert!(
            err < 0.02,
            "seed {seed}: empirical mean gap {mean:.0} ns vs expected {expected:.0} ns (err {:.3}%)",
            err * 100.0
        );
    }
}

/// The fixed process is exact: every gap is the configured period.
#[test]
fn fixed_process_is_exact() {
    let mut gen = ArrivalGen::new(ArrivalProcess::Fixed, 250.0, DetRng::new(9));
    for _ in 0..GAPS {
        assert_eq!(gen.next_gap_ns(), 4_000_000);
    }
}

/// Same seed, same stream: the generator introduces no hidden entropy.
#[test]
fn same_seed_reproduces_the_gap_stream() {
    let mut a = ArrivalGen::new(ArrivalProcess::Poisson, 150.0, DetRng::new(77));
    let mut b = ArrivalGen::new(ArrivalProcess::Poisson, 150.0, DetRng::new(77));
    let mut c = ArrivalGen::new(ArrivalProcess::Poisson, 150.0, DetRng::new(78));
    let mut diverged = false;
    for _ in 0..GAPS {
        let ga = a.next_gap_ns();
        assert_eq!(ga, b.next_gap_ns());
        diverged |= ga != c.next_gap_ns();
    }
    assert!(diverged, "a different seed must produce a different stream");
}

/// Poisson gaps are genuinely dispersed (not a fixed clock in
/// disguise): the coefficient of variation of an exponential is 1.
#[test]
fn poisson_gaps_have_exponential_dispersion() {
    let mut gen = ArrivalGen::new(ArrivalProcess::Poisson, 100.0, DetRng::new(5));
    let gaps: Vec<f64> = (0..GAPS).map(|_| gen.next_gap_ns() as f64).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    let cv = var.sqrt() / mean;
    assert!(
        (cv - 1.0).abs() < 0.1,
        "coefficient of variation {cv:.3} should be ~1 for an exponential"
    );
}

//! Observability end-to-end: the byzantine scenario must leave a
//! flight dump telling the whole story (flag → RE-ASS → epoch
//! rotation), and every node's introspection endpoint must answer
//! health/metrics/flight queries over real TCP while the cluster is
//! live.

use curb_cluster::{introspect_query, AgentEvent, Cluster, ClusterConfig, NodeBehavior};
use curb_core::SwitchId;
use curb_graph::synthetic;
use curb_telemetry::{parse_dump, EventKind, FlightConfig};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Watchdog: fail loudly instead of hanging CI if the cluster
/// deadlocks.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("cluster test deadlocked");
}

/// The flight recorder is process-global; tests that install it must
/// not overlap.
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn test_config(capacity: u32, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.curb.seed = seed;
    cfg.curb.max_cs_delay_ms = 1e9;
    cfg.curb.max_cc_delay_ms = None;
    cfg.curb.controller_capacity = capacity;
    cfg.request_timeout = Duration::from_secs(2);
    cfg
}

/// Waits until `pred` holds over all agent events seen so far.
fn wait_events<F: FnMut(&[(SwitchId, AgentEvent)]) -> bool>(
    cluster: &Cluster,
    secs: u64,
    mut pred: F,
) -> Vec<(SwitchId, AgentEvent)> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut seen = Vec::new();
    loop {
        if pred(&seen) || Instant::now() >= deadline {
            return seen;
        }
        match cluster.events.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => seen.push(ev),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return seen,
        }
    }
}

/// Pulls one string field out of a flat JSON object line.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pulls one numeric field out of a flat JSON object line.
fn json_num_field(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    digits.parse().ok()
}

/// The byzantine incident must leave a flight dump carrying the whole
/// causal chain in order: the liar is flagged, a RE-ASS is issued, and
/// a node rotates into the new epoch.
#[test]
fn byzantine_incident_leaves_a_flight_dump_with_the_full_sequence() {
    let _guard = recorder_lock();
    let dir = std::env::temp_dir().join(format!("curb-obs-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dump dir");
    curb_telemetry::enable();
    let recorder = curb_telemetry::install_flight_recorder(FlightConfig {
        dump_dir: Some(dir.clone()),
        // Every flag/RE-ASS/rotation dumps; the rotation dump — the
        // one that proves the sequence — must fit within the budget.
        max_dumps: 64,
        ..FlightConfig::default()
    });
    let dir2 = dir.clone();

    with_deadline(180, move || {
        // Same shape as the RE-ASS e2e: two disjoint groups of 4 with
        // spares, one non-leader liar serving switch 0.
        let topo = synthetic(12, 2, 17);
        let mut cfg = test_config(1, 3);
        let probe = Cluster::launch(&topo, cfg.clone()).expect("probe launch");
        let g0 = probe.epoch0.ctrl_list(SwitchId(0)).to_vec();
        let leader = probe.epoch0.groups[probe.epoch0.group_of(SwitchId(0)).0].leader();
        let liar = *g0.iter().find(|&&c| c != leader).expect("non-leader");
        probe.shutdown();

        cfg.behaviors = vec![NodeBehavior::Honest; 12];
        cfg.behaviors[liar] = NodeBehavior::Lying;
        let cluster = Cluster::launch(&topo, cfg).expect("launch");
        cluster.pkt_in(SwitchId(0), 1);
        cluster.pkt_in(SwitchId(1), 0);
        let seen = wait_events(&cluster, 120, |seen| {
            seen.iter()
                .any(|(s, e)| s.0 == 0 && matches!(e, AgentEvent::EpochAdopted { .. }))
        });
        assert!(
            seen.iter()
                .any(|(_, e)| matches!(e, AgentEvent::EpochAdopted { .. })),
            "the reassignment must commit and be adopted; saw {seen:?}"
        );
        assert!(cluster.max_epoch() >= 1, "nodes must rotate the epoch");
        cluster.shutdown();

        // A rotation dump exists; its event log tells the story in
        // causal order: flag, then RE-ASS, then rotation.
        let mut rotation_dumps: Vec<_> = std::fs::read_dir(&dir2)
            .expect("dump dir readable")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.contains("epoch_rotation"))
            })
            .collect();
        rotation_dumps.sort();
        let last = rotation_dumps.last().expect("an epoch_rotation dump");
        let text = std::fs::read_to_string(last).expect("dump readable");
        let (_, events) = parse_dump(&text);
        let pos = |kind: EventKind| events.iter().position(|e| e.kind == kind);
        let flag = pos(EventKind::ByzantineFlag).expect("byzantine_flag in dump");
        let reass = pos(EventKind::ReAss).expect("reass in dump");
        let rotation = pos(EventKind::EpochRotation).expect("epoch_rotation in dump");
        assert!(
            flag < reass && reass < rotation,
            "dump must order flag ({flag}) < reass ({reass}) < rotation ({rotation})"
        );
    });

    assert!(recorder.dumps_taken() >= 1);
    curb_telemetry::uninstall_flight_recorder();
    std::fs::remove_dir_all(&dir).ok();
}

/// Every controller's introspection endpoint answers over real TCP
/// while the cluster is live: flat-JSON health with the node's own
/// name and chain height, the metrics registry snapshot, and the
/// flight ring.
#[test]
fn introspection_endpoints_answer_on_a_live_cluster() {
    let _guard = recorder_lock();
    curb_telemetry::enable();
    let recorder = curb_telemetry::install_flight_recorder(FlightConfig::default());

    with_deadline(90, || {
        let topo = synthetic(4, 1, 11);
        let cluster = Cluster::launch(&topo, test_config(4, 1)).expect("launch");
        cluster.pkt_in(SwitchId(0), 0);
        let seen = wait_events(&cluster, 40, |seen| {
            seen.iter()
                .any(|(_, e)| matches!(e, AgentEvent::Accepted { .. }))
        });
        assert!(
            seen.iter()
                .any(|(_, e)| matches!(e, AgentEvent::Accepted { .. })),
            "round must commit before probing; saw {seen:?}"
        );

        let addrs = cluster.introspect_addrs();
        assert_eq!(addrs.len(), 4, "one endpoint per controller");
        let mut heights = Vec::new();
        for (c, addr) in addrs.iter().enumerate() {
            let health = introspect_query(*addr, "health").expect("health answer");
            assert_eq!(
                json_str_field(&health, "node").as_deref(),
                Some(format!("ctrl{c}").as_str()),
                "health names its own node: {health}"
            );
            heights.push(json_num_field(&health, "height").expect("height field"));

            let metrics = introspect_query(*addr, "metrics").expect("metrics answer");
            assert_eq!(
                json_str_field(&metrics, "node").as_deref(),
                Some(format!("ctrl{c}").as_str()),
                "metrics carry the node name: {metrics}"
            );

            // The flight answer is the recorder's merged ring dump;
            // with a recorder installed it parses as JSONL.
            let flight = introspect_query(*addr, "flight").expect("flight answer");
            let (spans, _) = parse_dump(&flight);
            assert!(
                !spans.is_empty(),
                "a committed round leaves spans in the flight ring"
            );

            let err = introspect_query(*addr, "bogus").expect("error answer");
            assert!(err.contains("error"), "unknown command answers: {err}");
        }
        assert!(
            heights.iter().any(|&h| h >= 1),
            "a committed round is on-chain somewhere: {heights:?}"
        );
        cluster.shutdown();
    });

    let _ = recorder;
    curb_telemetry::uninstall_flight_recorder();
}

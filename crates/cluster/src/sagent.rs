//! The s-agent: the switch-side daemon of the Curb architecture,
//! running as a real TCP client against its controller group.
//!
//! A table miss raises PACKET_IN: the agent broadcasts the request to
//! every controller in its list and collects [`SbMsg::Reply`] frames.
//! Acceptance is the shared [`ReplyMatcher`] rule — `f + 1` identical
//! configurations — and the accepted flow rules are installed into a
//! local [`FlowTable`] via FLOW_MOD, exactly the types the simulator's
//! switches use. Contradicting or missing replies feed the shared
//! [`EvidenceBook`]; fresh accusations trigger a live RE-ASS request,
//! and an accepted `NewAssignment` makes the agent re-home its TCP
//! connections onto the new controller group.
//!
//! Using the same matcher/evidence types as the in-simulator
//! [`SwitchActor`] means the cluster and the simulation can never
//! drift apart on what counts as byzantine.
//!
//! [`SwitchActor`]: curb_core::SwitchActor

use crate::node::write_sb_frame;
use crate::wire::{SbMsg, ANNOUNCE_SEQ_BIT};
use curb_core::{
    ConfigData, EvidenceBook, ReplyMatcher, ReqKind, RequestKey, RequestRecord, SwitchId,
};
use curb_net::SharedDecoder;
use curb_sdn::{FlowAction, FlowEntry, FlowMatch, FlowMod, FlowTable, HostId, PortId};
use curb_telemetry::{
    next_trace_nonce, now_nanos, record_event_ctx, record_span_ctx, EventKind, TraceCtx,
};
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for an [`SAgent`].
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// The switch this agent fronts.
    pub switch: SwitchId,
    /// Replies required before accepting (`f + 1`).
    pub accept_quorum: usize,
    /// Replies this much later than the accept are "lazy" evidence.
    pub lazy_margin_ns: u64,
    /// Missing-reply strikes before a controller is accused.
    pub suspect_threshold: u32,
    /// Lazy strikes before a controller is accused.
    pub lazy_patience: u32,
    /// How long to wait for replies before auditing a request.
    pub request_timeout: Duration,
    /// Idle loop sleep.
    pub poll: Duration,
    /// Maximum southbound frame size.
    pub max_frame: usize,
}

impl AgentConfig {
    /// Defaults for `switch` with quorum `f + 1`.
    pub fn new(switch: SwitchId, accept_quorum: usize) -> AgentConfig {
        AgentConfig {
            switch,
            accept_quorum,
            lazy_margin_ns: Duration::from_millis(300).as_nanos() as u64,
            suspect_threshold: 2,
            lazy_patience: 5,
            request_timeout: Duration::from_secs(2),
            poll: Duration::from_millis(1),
            max_frame: 1 << 20,
        }
    }
}

/// What an agent observed; the cluster surfaces these on one stream.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentEvent {
    /// `f + 1` identical replies: the configuration is accepted (and
    /// flow rules installed).
    Accepted {
        /// The request.
        key: RequestKey,
        /// The accepted configuration.
        config: ConfigData,
        /// Request → accept latency.
        latency_ns: u64,
    },
    /// Controllers contradicted the accepted config, missed the
    /// audit, or were persistently lazy — byzantine evidence.
    Byzantine {
        /// Newly accused controllers.
        accused: Vec<usize>,
    },
    /// The agent issued a RE-ASS request over the evidence.
    ReassIssued {
        /// The RE-ASS request key.
        key: RequestKey,
        /// The accused controllers.
        accused: Vec<usize>,
    },
    /// An accepted `NewAssignment` re-homed the agent.
    EpochAdopted {
        /// The agent's new controller list.
        ctrl_list: Vec<usize>,
    },
}

/// Live counters a test or benchmark can poll.
#[derive(Debug, Default)]
pub struct AgentProbe {
    /// Requests accepted (`f + 1` rule met).
    pub accepted: AtomicU64,
    /// RE-ASS requests issued.
    pub reass_issued: AtomicU64,
    /// `NewAssignment`s adopted.
    pub epochs_adopted: AtomicU64,
    /// Flow entries currently installed.
    pub flows: AtomicU64,
}

enum AgentCmd {
    PktIn { dst_host: u32 },
}

/// Control surface for a spawned [`SAgent`].
pub struct AgentHandle {
    /// The switch this agent fronts.
    pub switch: SwitchId,
    /// Live counters.
    pub probe: Arc<AgentProbe>,
    cmds: Sender<AgentCmd>,
    thread: Option<JoinHandle<()>>,
}

impl AgentHandle {
    /// Raises a PACKET_IN for `dst_host` (a table miss at the switch).
    pub fn pkt_in(&self, dst_host: u32) {
        let _ = self.cmds.send(AgentCmd::PktIn { dst_host });
    }

    /// A cloneable injection-only handle for driver threads: it can
    /// raise PACKET_INs but cannot join or shut the agent down, so an
    /// open-loop workload thread can own one while the cluster keeps
    /// the real handle.
    pub fn injector(&self) -> AgentInjector {
        AgentInjector {
            switch: self.switch,
            cmds: self.cmds.clone(),
        }
    }

    /// Stops the agent and waits for its thread.
    pub fn join(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        // The agent loop observes the command channel disconnecting.
        if let Some(t) = self.thread.take() {
            let (dummy, _) = channel();
            drop(std::mem::replace(&mut self.cmds, dummy));
            let _ = t.join();
        }
    }
}

impl Drop for AgentHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Injection-only clone of an [`AgentHandle`] (see
/// [`AgentHandle::injector`]). Dropping it never stops the agent.
#[derive(Clone)]
pub struct AgentInjector {
    /// The switch this injector feeds.
    pub switch: SwitchId,
    cmds: Sender<AgentCmd>,
}

impl AgentInjector {
    /// Raises a PACKET_IN for `dst_host` (a table miss at the switch).
    pub fn pkt_in(&self, dst_host: u32) {
        let _ = self.cmds.send(AgentCmd::PktIn { dst_host });
    }
}

/// How many times an unanswered request is re-raised (fresh sequence
/// number, same intent) before the agent gives up on it. A request can
/// be lost without any controller misbehaving — e.g. it raced an epoch
/// rotation and reached a leader that had already stepped down — so a
/// real switch re-raises PACKET_IN on timeout; the audit strikes for
/// the lost round still land.
const MAX_RETRIES: u32 = 5;

struct PendingReq {
    matcher: ReplyMatcher,
    kind: ReqKind,
    sent_ns: u64,
    deadline: Instant,
    reaped: bool,
    retries: u32,
    /// The round's trace context (minted at send; [`TraceCtx::NONE`]
    /// for controller-initiated announcement matchers).
    ctx: TraceCtx,
}

/// The s-agent state machine; owned by its thread.
pub struct SAgent {
    cfg: AgentConfig,
    sb_addrs: Vec<SocketAddr>,
    ctrl_list: Vec<usize>,
    conns: HashMap<usize, TcpStream>,
    reply_tx: Sender<(usize, SbMsg)>,
    reply_rx: Receiver<(usize, SbMsg)>,
    pending: HashMap<RequestKey, PendingReq>,
    evidence: EvidenceBook,
    table: FlowTable,
    next_seq: u64,
    events: Sender<(SwitchId, AgentEvent)>,
    probe: Arc<AgentProbe>,
}

impl SAgent {
    /// Spawns the agent on its own thread.
    ///
    /// `sb_addrs[c]` is controller `c`'s southbound address;
    /// `ctrl_list` the Step-0 controller group of this switch. Events
    /// are tagged with the switch id so many agents can share one
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if the agent thread cannot be spawned.
    pub fn spawn(
        cfg: AgentConfig,
        ctrl_list: Vec<usize>,
        sb_addrs: Vec<SocketAddr>,
        events: Sender<(SwitchId, AgentEvent)>,
    ) -> AgentHandle {
        let (cmd_tx, cmd_rx) = channel();
        let probe = Arc::new(AgentProbe::default());
        let probe2 = Arc::clone(&probe);
        let switch = cfg.switch;
        let thread = thread::Builder::new()
            .name(format!("curb-sagent-{}", switch.0))
            .spawn(move || {
                // Spans and flight-recorder events from this thread
                // carry the agent's node label, which becomes the
                // clock-domain name in merged multi-node traces.
                curb_telemetry::set_thread_node(format!("agent{}", switch.0));
                let (reply_tx, reply_rx) = channel();
                let mut agent = SAgent {
                    evidence: EvidenceBook::new(cfg.suspect_threshold, cfg.lazy_patience),
                    cfg,
                    sb_addrs,
                    ctrl_list: Vec::new(),
                    conns: HashMap::new(),
                    reply_tx,
                    reply_rx,
                    pending: HashMap::new(),
                    table: FlowTable::new(),
                    next_seq: 0,
                    events,
                    probe: probe2,
                };
                agent.adopt_ctrl_list(ctrl_list);
                agent.run(cmd_rx);
            })
            .expect("spawn s-agent");
        AgentHandle {
            switch,
            probe,
            cmds: cmd_tx,
            thread: Some(thread),
        }
    }

    fn run(&mut self, cmds: Receiver<AgentCmd>) {
        loop {
            let mut progress = false;
            loop {
                match cmds.try_recv() {
                    Ok(AgentCmd::PktIn { dst_host }) => {
                        self.send_request(ReqKind::PktIn { dst_host });
                        progress = true;
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => break,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        self.disconnect_all();
                        // cluster.round spans live in this thread's
                        // local buffer; hand them to the sink.
                        curb_telemetry::flush_thread();
                        return;
                    }
                }
            }
            while let Ok((controller, msg)) = self.reply_rx.try_recv() {
                if let SbMsg::Reply { key, config, .. } = msg {
                    self.on_reply(controller, key, config);
                    progress = true;
                }
            }
            self.audit_timeouts();
            if !progress {
                thread::sleep(self.cfg.poll);
            }
        }
    }

    fn send_request(&mut self, kind: ReqKind) -> RequestKey {
        self.send_request_with(kind, 0)
    }

    fn send_request_with(&mut self, kind: ReqKind, retries: u32) -> RequestKey {
        self.next_seq += 1;
        let key = RequestKey {
            switch: self.cfg.switch,
            seq: self.next_seq,
        };
        let record = RequestRecord {
            key,
            kind: kind.clone(),
        };
        // Mint the round's cross-process correlation key. The nonce is
        // a process-global counter (not the per-switch seq) so rounds
        // from successive cluster runs in one process never collide in
        // a merged trace.
        let ctx = TraceCtx::mint(self.cfg.switch.0 as u64, next_trace_nonce());
        self.pending.insert(
            key,
            PendingReq {
                matcher: ReplyMatcher::new(self.cfg.accept_quorum, self.cfg.lazy_margin_ns),
                kind,
                sent_ns: now_nanos(),
                deadline: Instant::now() + self.cfg.request_timeout,
                reaped: false,
                retries,
                ctx,
            },
        );
        let msg = SbMsg::Request { record, ctx };
        for c in self.ctrl_list.clone() {
            self.write_to(c, &msg);
        }
        key
    }

    fn on_reply(&mut self, controller: usize, key: RequestKey, config: ConfigData) {
        if !self.pending.contains_key(&key) {
            // Controllers push committed reassignments under a
            // synthetic announce key; open a matcher for it so the
            // same `f + 1` identical-config rule gates adoption.
            // Anything else without a pending request is stale or
            // fabricated and is dropped.
            if key.seq & ANNOUNCE_SEQ_BIT == 0 || key.switch != self.cfg.switch {
                return;
            }
            self.pending.insert(
                key,
                PendingReq {
                    matcher: ReplyMatcher::new(self.cfg.accept_quorum, self.cfg.lazy_margin_ns),
                    kind: ReqKind::ReAss {
                        accused: Vec::new(),
                    },
                    sent_ns: now_nanos(),
                    deadline: Instant::now() + self.cfg.request_timeout,
                    reaped: false,
                    // Announcements are controller-initiated; there is
                    // nothing for the agent to re-raise.
                    retries: MAX_RETRIES,
                    ctx: TraceCtx::NONE,
                },
            );
        }
        let pending = self.pending.get_mut(&key).expect("pending entry exists");
        self.evidence.clear_miss(controller);
        let now = now_nanos();
        let outcome = pending.matcher.on_reply(controller, config, now);
        if let Some(config) = outcome.newly_accepted {
            let latency_ns = now.saturating_sub(pending.sent_ns);
            let sent_ns = pending.sent_ns;
            let ctx = pending.ctx;
            // Install before announcing: anyone observing `Accepted`
            // must already see the config's effects (flow table,
            // ctrl_list) on the agent.
            self.apply_config(&config);
            if key.seq & ANNOUNCE_SEQ_BIT == 0 {
                // Only agent-issued rounds count as accepts; an
                // announcement quorum just applies (EpochAdopted
                // is emitted by apply_config).
                record_span_ctx(
                    "cluster.round",
                    sent_ns,
                    now,
                    self.cfg.switch.0 as i64,
                    key.seq as i64,
                    ctx,
                );
                self.probe.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = self.events.send((
                    self.cfg.switch,
                    AgentEvent::Accepted {
                        key,
                        config: config.clone(),
                        latency_ns,
                    },
                ));
            }
        }
        if !outcome.contradictors.is_empty() {
            self.accuse(outcome.contradictors);
        }
        if outcome.straggler && self.evidence.lazy_strike(controller) {
            self.accuse(vec![controller]);
        }
    }

    /// Installs an accepted configuration: FLOW_MOD for flow rules,
    /// connection re-homing for a new assignment.
    fn apply_config(&mut self, config: &ConfigData) {
        match config {
            ConfigData::FlowRules(rules) => {
                for rule in rules {
                    let entry = FlowEntry::new(
                        rule.priority,
                        FlowMatch::dst_host(HostId(rule.dst_host)),
                        vec![FlowAction::Output(PortId(rule.out_port))],
                    );
                    FlowMod::add(entry).apply(&mut self.table, now_nanos());
                }
                self.probe
                    .flows
                    .store(self.table.len() as u64, Ordering::Relaxed);
            }
            ConfigData::NewAssignment { groups } => {
                if let Some(list) = groups.get(self.cfg.switch.0) {
                    self.adopt_ctrl_list(list.clone());
                    self.probe.epochs_adopted.fetch_add(1, Ordering::Relaxed);
                    let _ = self.events.send((
                        self.cfg.switch,
                        AgentEvent::EpochAdopted {
                            ctrl_list: list.clone(),
                        },
                    ));
                }
            }
        }
    }

    /// Request timed out without `f + 1` identical replies: audit who
    /// never answered and strike them (Algorithm 1's timeout path).
    fn audit_timeouts(&mut self) {
        let now = Instant::now();
        let mut accused: Vec<usize> = Vec::new();
        let mut reap: Vec<RequestKey> = Vec::new();
        let mut resend: Vec<(ReqKind, u32)> = Vec::new();
        for (key, pending) in self.pending.iter_mut() {
            if now < pending.deadline {
                continue;
            }
            if !pending.reaped {
                pending.reaped = true;
                if let Some(audit) = pending.matcher.audit(&self.ctrl_list) {
                    for m in audit.missing {
                        if self.evidence.miss_strike(m) {
                            accused.push(m);
                        }
                    }
                    for l in audit.lazies {
                        if self.evidence.lazy_strike(l) {
                            accused.push(l);
                        }
                    }
                }
                // A request that never reached acceptance is re-raised
                // under a fresh sequence number: it may have raced an
                // epoch rotation rather than met byzantine silence.
                if pending.matcher.accepted().is_none() && pending.retries < MAX_RETRIES {
                    resend.push((pending.kind.clone(), pending.retries + 1));
                }
            }
            // Keep audited entries around one more timeout window so
            // late contradictions still count, then reap.
            if now >= pending.deadline + self.cfg.request_timeout {
                reap.push(*key);
            }
        }
        for key in reap {
            self.pending.remove(&key);
        }
        if !accused.is_empty() {
            self.accuse(accused);
        }
        for (kind, retries) in resend {
            self.send_request_with(kind, retries);
        }
    }

    /// Records fresh accusations and fires the live RE-ASS request.
    fn accuse(&mut self, controllers: Vec<usize>) {
        let fresh = self.evidence.fresh_accusations(controllers);
        if fresh.is_empty() {
            return;
        }
        record_event_ctx(
            EventKind::ByzantineFlag,
            format!("switch {} accuses {:?}", self.cfg.switch.0, fresh),
            TraceCtx::NONE,
        );
        let _ = self.events.send((
            self.cfg.switch,
            AgentEvent::Byzantine {
                accused: fresh.clone(),
            },
        ));
        let key = self.send_request(ReqKind::ReAss {
            accused: fresh.clone(),
        });
        let reass_ctx = self.pending.get(&key).map(|p| p.ctx).unwrap_or_default();
        record_event_ctx(
            EventKind::ReAss,
            format!(
                "switch {} issued RE-ASS seq {} over {:?}",
                self.cfg.switch.0, key.seq, fresh
            ),
            reass_ctx,
        );
        self.probe.reass_issued.fetch_add(1, Ordering::Relaxed);
        let _ = self.events.send((
            self.cfg.switch,
            AgentEvent::ReassIssued {
                key,
                accused: fresh,
            },
        ));
    }

    /// Re-homes the agent's connections onto `list` (Step 0 or an
    /// accepted reassignment).
    fn adopt_ctrl_list(&mut self, list: Vec<usize>) {
        let changed = list != self.ctrl_list;
        self.evidence.adopt_ctrl_list(changed, &list);
        let stale: Vec<usize> = self
            .conns
            .keys()
            .copied()
            .filter(|c| !list.contains(c))
            .collect();
        for c in stale {
            if let Some(conn) = self.conns.remove(&c) {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        self.ctrl_list = list;
        for c in self.ctrl_list.clone() {
            self.ensure_connected(c);
        }
    }

    fn ensure_connected(&mut self, controller: usize) -> bool {
        if self.conns.contains_key(&controller) {
            return true;
        }
        let Some(&addr) = self.sb_addrs.get(controller) else {
            return false;
        };
        let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
            return false;
        };
        let _ = stream.set_nodelay(true);
        if write_sb_frame(
            &mut stream,
            &SbMsg::Hello {
                switch: self.cfg.switch.0 as u64,
            },
        )
        .is_err()
        {
            return false;
        }
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return false,
        };
        let tx = self.reply_tx.clone();
        let max_frame = self.cfg.max_frame;
        let _ = thread::Builder::new()
            .name(format!("curb-sagent-{}-rx-{controller}", self.cfg.switch.0))
            .spawn(move || reply_reader(reader, controller, tx, max_frame));
        self.conns.insert(controller, stream);
        true
    }

    fn write_to(&mut self, controller: usize, msg: &SbMsg) {
        if !self.ensure_connected(controller) {
            return;
        }
        let failed = match self.conns.get_mut(&controller) {
            Some(stream) => write_sb_frame(stream, msg).is_err(),
            None => false,
        };
        if failed {
            self.conns.remove(&controller);
        }
    }

    fn disconnect_all(&mut self) {
        for (_, conn) in self.conns.drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// Reads reply frames off one controller connection until it closes.
fn reply_reader(
    mut stream: TcpStream,
    controller: usize,
    tx: Sender<(usize, SbMsg)>,
    max_frame: usize,
) {
    // Zero-copy decode: reads land straight in the decoder's shared
    // block; the reply scratch vec is reused across reads.
    let mut decoder = SharedDecoder::new(max_frame);
    let mut msgs: Vec<Option<SbMsg>> = Vec::new();
    loop {
        let n = match stream.read(decoder.writable()) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        msgs.clear();
        if decoder
            .advance(n, |frame| msgs.push(SbMsg::decode(&frame)))
            .is_err()
        {
            return;
        }
        for msg in msgs.drain(..) {
            match msg {
                Some(msg @ SbMsg::Reply { .. }) => {
                    if tx.send((controller, msg)).is_err() {
                        return;
                    }
                }
                Some(_) => {} // ignore non-reply frames from controllers
                None => return,
            }
        }
    }
}

//! Open-loop workload driver and scripted fault timeline for a
//! running [`Cluster`].
//!
//! The closed-loop benches answer "how fast can the control plane go
//! when every switch waits for its previous round" — useful for a
//! ceiling, useless for the paper's edge-computing claims, which are
//! about **latency under a given offered load**. This module is the
//! open-loop half: PACKET_IN arrivals are scheduled by a seeded
//! arrival process ([`ArrivalGen`]: Poisson or fixed-rate, all
//! randomness from [`DetRng`] — no wall-clock randomness in any rate
//! decision), materialised up front into a deterministic
//! [`Arrival`] schedule, and injected at their scheduled offsets
//! regardless of whether earlier rounds finished. Offered load is a
//! property of the schedule; delivered throughput and latency are
//! whatever the cluster manages.
//!
//! The same seed always produces the same schedule — switches, dst
//! hosts and inter-arrival gaps — which is what lets a scenario double
//! as a regression test: [`schedule_digest`] fingerprints the workload
//! and the bench embeds it (plus an event-trace digest) in its report.
//!
//! The fault half scripts the timeline: a [`FaultScript`] is a list of
//! `(at_ms, action)` events applied to the cluster's [`FaultPlane`]
//! (the per-node [`LinkFaults`] handles of every backbone transport) —
//! partitions, node isolation ("churn" that keeps chain state, as a
//! kill-restart with state transfer would), slow links, and heals.

use crate::cluster::Cluster;
use crate::sagent::AgentInjector;
use curb_core::SwitchId;
use curb_crypto::rng::DetRng;
use curb_crypto::sha256::{Digest, Sha256};
use curb_net::LinkFaults;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The inter-arrival process of an open-loop phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponentially distributed gaps (a Poisson arrival stream).
    Poisson,
    /// Constant gaps (a deterministic fixed-rate stream).
    Fixed,
}

impl std::str::FromStr for ArrivalProcess {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "fixed" => Ok(ArrivalProcess::Fixed),
            other => Err(format!("unknown arrival process {other:?}")),
        }
    }
}

/// Seeded inter-arrival gap generator: every gap comes from the
/// [`DetRng`] it was built with, so one seed fixes the entire stream.
#[derive(Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    /// Mean gap in nanoseconds (`1e9 / rate_hz`).
    mean_gap_ns: f64,
    rng: DetRng,
}

impl ArrivalGen {
    /// A generator emitting gaps for `rate_hz` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite.
    pub fn new(process: ArrivalProcess, rate_hz: f64, rng: DetRng) -> ArrivalGen {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "arrival rate must be positive, got {rate_hz}"
        );
        ArrivalGen {
            process,
            mean_gap_ns: 1e9 / rate_hz,
            rng,
        }
    }

    /// The next inter-arrival gap in nanoseconds (at least 1).
    pub fn next_gap_ns(&mut self) -> u64 {
        let gap = match self.process {
            ArrivalProcess::Fixed => self.mean_gap_ns,
            ArrivalProcess::Poisson => {
                // Inverse-CDF sample of Exp(rate): −ln(u) · mean with
                // u ∈ (0, 1]. `next_f64` is [0, 1), so flip it to keep
                // ln away from zero.
                let u = 1.0 - self.rng.next_f64();
                -u.ln() * self.mean_gap_ns
            }
        };
        (gap.max(1.0)) as u64
    }
}

/// One scheduled PACKET_IN injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from workload start.
    pub at_ns: u64,
    /// The phase (index into the spec list) this arrival belongs to.
    pub phase: usize,
    /// The switch raising the PACKET_IN.
    pub switch: SwitchId,
    /// The destination host of the flow request.
    pub dst_host: u32,
}

/// One open-loop phase: `rate_hz` arrivals per second for
/// `duration_ms`, under the given process. A ramp is a list of phases
/// with increasing rates; a burst is a short high-rate phase between
/// calm ones; a step is two phases.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase length in milliseconds.
    pub duration_ms: u64,
    /// Offered arrival rate across the whole fleet, in Hz.
    pub rate_hz: f64,
    /// Gap distribution.
    pub process: ArrivalProcess,
}

/// Materialises the full arrival schedule for `phases` over
/// `n_switches` switches. Everything — gaps, switch choice, dst host —
/// is drawn from `rng`, so the schedule is a pure function of the
/// seed and the specs. Arrivals are in nondecreasing `at_ns` order.
pub fn build_schedule(phases: &[PhaseSpec], n_switches: usize, rng: &mut DetRng) -> Vec<Arrival> {
    assert!(n_switches > 0, "schedule needs at least one switch");
    let mut schedule = Vec::new();
    let mut phase_start_ns: u64 = 0;
    for (idx, spec) in phases.iter().enumerate() {
        let phase_end_ns = phase_start_ns + spec.duration_ms * 1_000_000;
        let mut gen = ArrivalGen::new(spec.process, spec.rate_hz, rng.fork());
        // The first gap offsets from the phase start: an open-loop
        // stream has no arrival pinned at t=0.
        let mut t = phase_start_ns + gen.next_gap_ns();
        while t < phase_end_ns {
            schedule.push(Arrival {
                at_ns: t,
                phase: idx,
                switch: SwitchId(rng.next_below(n_switches as u64) as usize),
                dst_host: rng.next_range(1, 1 << 16) as u32,
            });
            t += gen.next_gap_ns();
        }
        phase_start_ns = phase_end_ns;
    }
    schedule
}

/// Fingerprints a schedule: the SHA-256 over every arrival's
/// `(at_ns, phase, switch, dst_host)` in order. Two runs with the same
/// seed and specs produce the same digest; the bench embeds it so a
/// regression diff can tell "the workload changed" from "the system
/// changed".
pub fn schedule_digest(schedule: &[Arrival]) -> Digest {
    let mut h = Sha256::new();
    for a in schedule {
        h.update(&a.at_ns.to_be_bytes());
        h.update(&(a.phase as u64).to_be_bytes());
        h.update(&(a.switch.0 as u64).to_be_bytes());
        h.update(&a.dst_host.to_be_bytes());
    }
    h.finalize()
}

/// Injects `schedule` into the cluster's agents open-loop: each
/// arrival fires at its scheduled offset from `start`, whether or not
/// earlier rounds completed. Runs on its own thread; join the handle
/// to wait for the last injection.
///
/// Sleeping is coarse (OS timer); the *schedule* is exact and
/// deterministic, the injection instant jitters by scheduler noise —
/// the same tolerance any real switch's PACKET_IN timing has.
pub fn spawn_injector(
    injectors: Vec<AgentInjector>,
    schedule: Vec<Arrival>,
    start: Instant,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name("curb-edgeload".into())
        .spawn(move || {
            for arrival in schedule {
                let due = start + Duration::from_nanos(arrival.at_ns);
                let now = Instant::now();
                if due > now {
                    thread::sleep(due - now);
                }
                if let Some(inj) = injectors.get(arrival.switch.0) {
                    inj.pkt_in(arrival.dst_host);
                }
            }
        })
        .expect("spawn open-loop injector")
}

/// A scripted network fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Cut every backbone link between `side` and the rest of the
    /// controllers, both directions.
    Partition {
        /// One side of the cut, by controller id.
        side: Vec<usize>,
    },
    /// Cut every backbone link of one controller (both directions):
    /// the node is gone from its peers' view but keeps its chain
    /// state, like a controller mid-churn before its restart.
    Isolate {
        /// The controller to isolate.
        node: usize,
    },
    /// Undo an [`FaultAction::Isolate`] of `node`.
    Rejoin {
        /// The controller to reconnect.
        node: usize,
    },
    /// Add `delay_ms` of one-way latency on the `a`↔`b` backbone
    /// link, both directions.
    SlowLink {
        /// One endpoint, by controller id.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// Added one-way latency in milliseconds.
        delay_ms: u64,
    },
    /// Heal every cut and clear every delay on every node.
    Heal,
}

/// One timeline entry: apply `action` `at_ms` after workload start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from workload start, in milliseconds.
    pub at_ms: u64,
    /// What to do.
    pub action: FaultAction,
}

/// The per-node link-fault handles of a running cluster's backbone
/// transports, with cluster-level fault verbs on top.
#[derive(Clone)]
pub struct FaultPlane {
    handles: Vec<Arc<LinkFaults>>,
}

impl FaultPlane {
    /// Wraps the per-node handles (index = controller id).
    pub fn new(handles: Vec<Arc<LinkFaults>>) -> FaultPlane {
        FaultPlane { handles }
    }

    /// Number of controllers covered.
    pub fn nodes(&self) -> usize {
        self.handles.len()
    }

    /// The raw handle of one node's backbone.
    pub fn node(&self, id: usize) -> Option<&Arc<LinkFaults>> {
        self.handles.get(id)
    }

    /// Applies one scripted action.
    pub fn apply(&self, action: &FaultAction) {
        curb_telemetry::record_event(
            curb_telemetry::EventKind::LinkFault,
            format!("fault plane applied {action:?}"),
        );
        match action {
            FaultAction::Partition { side } => self.partition(side),
            FaultAction::Isolate { node } => self.isolate(*node),
            FaultAction::Rejoin { node } => self.rejoin(*node),
            FaultAction::SlowLink { a, b, delay_ms } => {
                self.slow_link(*a, *b, Duration::from_millis(*delay_ms));
            }
            FaultAction::Heal => self.heal_all(),
        }
    }

    /// Cuts every link crossing the `side` / rest boundary, both
    /// directions.
    pub fn partition(&self, side: &[usize]) {
        for a in 0..self.handles.len() {
            let a_in = side.contains(&a);
            for b in 0..self.handles.len() {
                if a != b && a_in != side.contains(&b) {
                    self.handles[a].cut(b);
                }
            }
        }
    }

    /// Cuts every link of `node`, both directions.
    pub fn isolate(&self, node: usize) {
        for (other, handle) in self.handles.iter().enumerate() {
            if other != node {
                handle.cut(node);
                self.handles[node].cut(other);
            }
        }
    }

    /// Heals every link of `node`, both directions.
    pub fn rejoin(&self, node: usize) {
        for (other, handle) in self.handles.iter().enumerate() {
            if other != node {
                handle.heal(node);
                self.handles[node].heal(other);
            }
        }
    }

    /// Adds one-way `delay` on the `a`↔`b` link, both directions.
    pub fn slow_link(&self, a: usize, b: usize, delay: Duration) {
        if let Some(h) = self.handles.get(a) {
            h.set_delay(b, delay);
        }
        if let Some(h) = self.handles.get(b) {
            h.set_delay(a, delay);
        }
    }

    /// Heals every cut and clears every delay everywhere.
    pub fn heal_all(&self) {
        for handle in &self.handles {
            handle.heal_all();
        }
    }

    /// Total frames the fault layer dropped across all nodes.
    pub fn dropped(&self) -> u64 {
        self.handles.iter().map(|h| h.dropped()).sum()
    }

    /// Total frames the fault layer delayed across all nodes.
    pub fn delayed(&self) -> u64 {
        self.handles.iter().map(|h| h.delayed()).sum()
    }
}

/// Spawns a thread that applies `events` (sorted or not) at their
/// offsets from `start`. Join the handle to wait for the last fault.
pub fn spawn_fault_script(
    plane: FaultPlane,
    mut events: Vec<FaultEvent>,
    start: Instant,
) -> JoinHandle<()> {
    events.sort_by_key(|e| e.at_ms);
    thread::Builder::new()
        .name("curb-faultscript".into())
        .spawn(move || {
            for event in events {
                let due = start + Duration::from_millis(event.at_ms);
                let now = Instant::now();
                if due > now {
                    thread::sleep(due - now);
                }
                plane.apply(&event.action);
            }
        })
        .expect("spawn fault script")
}

impl Cluster {
    /// The fault-injection plane over every node's backbone transport.
    pub fn fault_plane(&self) -> FaultPlane {
        FaultPlane::new(self.faults.clone())
    }

    /// Per-switch open-loop injection handles, cloneable into a driver
    /// thread.
    pub fn injectors(&self) -> Vec<AgentInjector> {
        self.agents.iter().map(|a| a.injector()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> Vec<PhaseSpec> {
        vec![
            PhaseSpec {
                duration_ms: 100,
                rate_hz: 200.0,
                process: ArrivalProcess::Poisson,
            },
            PhaseSpec {
                duration_ms: 50,
                rate_hz: 1000.0,
                process: ArrivalProcess::Fixed,
            },
        ]
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let a = build_schedule(&phases(), 4, &mut DetRng::new(42));
        let b = build_schedule(&phases(), 4, &mut DetRng::new(42));
        let c = build_schedule(&phases(), 4, &mut DetRng::new(43));
        assert_eq!(a, b);
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        assert_ne!(schedule_digest(&a), schedule_digest(&c));
    }

    #[test]
    fn schedule_is_ordered_and_phase_bounded() {
        let sched = build_schedule(&phases(), 4, &mut DetRng::new(7));
        assert!(!sched.is_empty());
        for w in sched.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns, "arrivals must be time-ordered");
        }
        for a in &sched {
            match a.phase {
                0 => assert!(a.at_ns < 100_000_000),
                1 => assert!((100_000_000..150_000_000).contains(&a.at_ns)),
                p => panic!("arrival in nonexistent phase {p}"),
            }
            assert!(a.switch.0 < 4);
            assert!(a.dst_host >= 1);
        }
    }

    #[test]
    fn fixed_process_hits_exact_count() {
        // 1 kHz for 50 ms = gap 1 ms → arrivals at 1..=49 ms (the
        // first gap offsets from phase start, the 50 ms boundary is
        // exclusive).
        let spec = vec![PhaseSpec {
            duration_ms: 50,
            rate_hz: 1000.0,
            process: ArrivalProcess::Fixed,
        }];
        let sched = build_schedule(&spec, 2, &mut DetRng::new(1));
        assert_eq!(sched.len(), 49);
    }

    #[test]
    fn fault_plane_partition_and_heal_shapes() {
        // Free-standing LinkFaults handles (no sockets): the plane's
        // pairwise cut/heal logic is pure bookkeeping over flags.
        let handles: Vec<Arc<LinkFaults>> = (0..4).map(|_| LinkFaults::for_testing(4)).collect();
        let plane = FaultPlane::new(handles);
        plane.partition(&[0, 1]);
        let h = |i: usize| plane.node(i).unwrap();
        assert!(h(0).is_cut(2) && h(0).is_cut(3) && !h(0).is_cut(1));
        assert!(h(2).is_cut(0) && h(2).is_cut(1) && !h(2).is_cut(3));
        plane.heal_all();
        for a in 0..4 {
            for b in 0..4 {
                assert!(!h(a).is_cut(b));
            }
        }
        plane.isolate(3);
        assert!(h(0).is_cut(3) && h(3).is_cut(0) && !h(0).is_cut(1));
        plane.rejoin(3);
        assert!(!h(0).is_cut(3) && !h(3).is_cut(0));
        plane.slow_link(1, 2, Duration::from_millis(5));
        assert_eq!(h(1).delay_ns(2), 5_000_000);
        assert_eq!(h(2).delay_ns(1), 5_000_000);
    }
}

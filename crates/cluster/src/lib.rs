//! The full Curb protocol over real sockets: a multi-group control
//! plane with s-agents, a final committee, and live RE-ASS.
//!
//! Where `curb-core` runs the protocol inside a discrete-event
//! simulator and `curb-net` runs a *single* PBFT group over TCP, this
//! crate deploys the whole architecture on real sockets:
//!
//! * **Controller nodes** ([`ControllerNode`]) each host one consensus
//!   runner per controller group they belong to plus the final
//!   committee, multiplexed over a single TCP backbone connection per
//!   node pair (group-scoped *lanes* inside the shared transport; the
//!   wire handshake carries the cluster instance id and rejects
//!   foreign peers).
//! * **S-agents** ([`SAgent`]) are real TCP clients that raise
//!   PACKET_IN requests, accept on `f + 1` identical REPLYs, install
//!   the committed `curb-sdn` flow rules, and turn contradicting or
//!   missing replies into byzantine evidence — the exact
//!   [`ReplyMatcher`]/[`EvidenceBook`] types the simulator uses.
//! * **Live RE-ASS**: accusations trigger a CAP re-solve; the
//!   committed `NewAssignment` rotates the epoch on every node while
//!   the previous epoch's consensus instances drain in flight.
//!
//! The per-phase spans `cluster.round`, `cluster.intra` and
//! `cluster.final` land in `curb-telemetry` alongside the transport's
//! `consensus.*` spans.
//!
//! # Example
//!
//! ```no_run
//! use curb_cluster::{Cluster, ClusterConfig};
//! use curb_core::SwitchId;
//! use curb_graph::synthetic;
//!
//! let topo = synthetic(4, 2, 7);
//! let cluster = Cluster::launch(&topo, ClusterConfig::default()).unwrap();
//! cluster.pkt_in(SwitchId(0), 1);
//! for (switch, event) in cluster.events.iter().take(1) {
//!     println!("{switch:?}: {event:?}");
//! }
//! cluster.shutdown();
//! ```
//!
//! [`ReplyMatcher`]: curb_core::ReplyMatcher
//! [`EvidenceBook`]: curb_core::EvidenceBook

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod driver;
pub mod introspect;
pub mod node;
pub mod payload;
pub mod persist;
pub mod sagent;
pub mod wire;

pub use cluster::{bootstrap, bootstrap_pinned, Bootstrap, Cluster, ClusterConfig};
pub use driver::{
    build_schedule, schedule_digest, spawn_fault_script, spawn_injector, Arrival, ArrivalGen,
    ArrivalProcess, FaultAction, FaultEvent, FaultPlane, PhaseSpec,
};
pub use introspect::{query as introspect_query, IntrospectServer, IntrospectState};
pub use node::{
    final_lane, intra_lane, ControllerNode, NodeBehavior, NodeConfig, NodeHandle, NodeProbe,
    LANE_STRIDE,
};
pub use payload::CtrlPayload;
pub use persist::{ChainStore, PersistConfig, RecoveryInfo};
pub use sagent::{AgentConfig, AgentEvent, AgentHandle, AgentInjector, AgentProbe, SAgent};
pub use wire::{ClusterMsg, SbMsg};

//! Cluster bootstrap: Step 0 over real sockets.
//!
//! [`Cluster::launch`] runs the paper's initialisation on a topology —
//! deterministic key generation, the OP controller assignment via the
//! CAP solver, the genesis block — then binds one backbone listener
//! and one southbound listener per controller on the loopback
//! interface, spawns every [`ControllerNode`], and starts one
//! [`SAgent`] per switch. The result is the full 4-step Curb round
//! workflow over TCP: PACKET_IN → intra-group PBFT → final-committee
//! PBFT → block append → REPLY, with live RE-ASS on byzantine
//! evidence.

use crate::introspect::{IntrospectServer, IntrospectState};
use crate::node::{ControllerNode, NodeBehavior, NodeConfig, NodeHandle};
use crate::payload::CtrlPayload;
use crate::sagent::{AgentConfig, AgentEvent, AgentHandle, SAgent};
use curb_assign::{solve, Assignment};
use curb_consensus::Batch;
use curb_core::config::PlaneMode;
use curb_core::{CurbConfig, Epoch, SetupError, Shared, SwitchId};
use curb_crypto::rng::DetRng;
use curb_crypto::KeyPair;
use curb_graph::{DelayModel, Internet2};
use curb_net::{MuxConfig, MuxTransport};
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Duration;

/// Everything needed to launch a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Protocol configuration (f, thresholds, solver knobs, seed —
    /// the seed doubles as the wire-level cluster instance id).
    pub curb: CurbConfig,
    /// Per-controller fault injection; missing entries are honest.
    pub behaviors: Vec<NodeBehavior>,
    /// Node tuning (runner, drain grace, polling).
    pub node: NodeConfig,
    /// Agent request timeout (drives the audit).
    pub request_timeout: Duration,
    /// Reactor shards per node backbone: how many event-loop threads
    /// each controller partitions its peer sockets across.
    pub shards: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            curb: CurbConfig::default(),
            behaviors: Vec::new(),
            node: NodeConfig::default(),
            request_timeout: Duration::from_secs(2),
            shards: 1,
        }
    }
}

/// The Step-0 artifacts shared by every node.
pub struct Bootstrap {
    /// Immutable shared state (config, keys, delays, routing).
    pub shared: Arc<Shared>,
    /// The initial epoch (OP assignment, groups, final committee).
    pub epoch: Arc<Epoch>,
}

/// Runs Step 0 on `topo`: identities, delay matrices, routing table,
/// the initial OP assignment and the epoch derived from it. This is
/// the same initialisation the simulator performs, minus the
/// discrete-event network.
///
/// # Errors
///
/// [`SetupError`] if the topology is empty or the assignment is
/// infeasible.
pub fn bootstrap(topo: &Internet2, config: CurbConfig) -> Result<Bootstrap, SetupError> {
    let shared = build_shared(topo, config)?;
    let plan = shared.plan;
    let assignment = match shared.config.mode {
        PlaneMode::Grouped { .. } => {
            let model = shared.base_model();
            let solution =
                solve(&model, &shared.initial_options()).map_err(SetupError::Assignment)?;
            solution.assignment
        }
        PlaneMode::Flat => {
            let all: Vec<usize> = (0..plan.n_controllers).collect();
            Assignment::from_groups(vec![all; plan.n_switches], plan.n_controllers)
        }
    };
    finish_bootstrap(shared, assignment)
}

/// Like [`bootstrap`], but skips the CAP solver and deals the
/// controllers into exactly `n_groups` disjoint groups of `3f + 1`,
/// assigning switches round-robin. Deterministic deployment layout for
/// benchmarks and CI smoke runs whose assertions need a known group
/// structure; RE-ASS re-solves still go through the real solver.
///
/// # Errors
///
/// [`SetupError`] if the topology is empty or there are fewer than
/// `n_groups * (3f + 1)` controllers.
pub fn bootstrap_pinned(
    topo: &Internet2,
    config: CurbConfig,
    n_groups: usize,
) -> Result<Bootstrap, SetupError> {
    let shared = build_shared(topo, config)?;
    let plan = shared.plan;
    let group_size = 3 * shared.config.f + 1;
    if n_groups == 0 || n_groups * group_size > plan.n_controllers {
        return Err(SetupError::EmptyTopology);
    }
    let groups: Vec<Vec<usize>> = (0..n_groups)
        .map(|g| (g * group_size..(g + 1) * group_size).collect())
        .collect();
    let per_switch: Vec<Vec<usize>> = (0..plan.n_switches)
        .map(|s| groups[s % n_groups].clone())
        .collect();
    let assignment = Assignment::from_groups(per_switch, plan.n_controllers);
    finish_bootstrap(shared, assignment)
}

fn finish_bootstrap(shared: Arc<Shared>, assignment: Assignment) -> Result<Bootstrap, SetupError> {
    let removed = vec![false; shared.plan.n_controllers];
    let epoch = Arc::new(Epoch::build(
        assignment,
        &shared.keys,
        shared.config.f,
        removed,
    ));
    Ok(Bootstrap { shared, epoch })
}

fn build_shared(topo: &Internet2, config: CurbConfig) -> Result<Arc<Shared>, SetupError> {
    let controller_sites: Vec<usize> = topo.controllers().collect();
    let switch_sites: Vec<usize> = topo.switches().collect();
    if controller_sites.is_empty() || switch_sites.is_empty() {
        return Err(SetupError::EmptyTopology);
    }
    let plan = curb_core::NodePlan {
        n_controllers: controller_sites.len(),
        n_switches: switch_sites.len(),
    };
    let model = DelayModel::paper_default();
    let km_table = topo.graph.all_pairs();
    let ms = |a: usize, b: usize| model.propagation(km_table[a][b]).as_secs_f64() * 1_000.0;

    let cs_delay_ms: Vec<Vec<f64>> = switch_sites
        .iter()
        .map(|&s| controller_sites.iter().map(|&c| ms(s, c)).collect())
        .collect();
    let cc_delay_ms: Vec<Vec<f64>> = controller_sites
        .iter()
        .map(|&a| controller_sites.iter().map(|&b| ms(a, b)).collect())
        .collect();

    let mut next_hop_port = vec![vec![0u16; plan.n_switches]; plan.n_switches];
    for (i, &site) in switch_sites.iter().enumerate() {
        let neighbors: Vec<usize> = topo.graph.neighbors(site).map(|(n, _)| n).collect();
        for (j, &dst_site) in switch_sites.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some((_, path)) = topo.graph.shortest_path(site, dst_site) {
                let first_hop = path[1];
                if let Some(port) = neighbors.iter().position(|&n| n == first_hop) {
                    next_hop_port[i][j] = (port + 1) as u16;
                }
            }
        }
    }

    let mut rng = DetRng::new(config.seed);
    let controller_keys: Vec<KeyPair> = (0..plan.n_controllers)
        .map(|_| KeyPair::generate(&mut rng))
        .collect();
    let public_keys = controller_keys.iter().map(|k| k.public()).collect();

    Ok(Arc::new(Shared {
        config,
        plan,
        keys: public_keys,
        cs_delay_ms,
        cc_delay_ms,
        next_hop_port,
    }))
}

/// A running cluster: every controller node plus one s-agent per
/// switch, all on loopback TCP.
pub struct Cluster {
    /// Step-0 shared state.
    pub shared: Arc<Shared>,
    /// The initial epoch (nodes rotate independently after RE-ASS).
    pub epoch0: Arc<Epoch>,
    /// Controller node handles, by controller id.
    pub nodes: Vec<NodeHandle>,
    /// S-agent handles, by switch id.
    pub agents: Vec<AgentHandle>,
    /// Merged event stream from every agent.
    pub events: Receiver<(SwitchId, AgentEvent)>,
    /// Per-node backbone link-fault handles (index = controller id),
    /// captured before each mux moved into its node. The scenario
    /// driver's [`FaultPlane`](crate::FaultPlane) wraps these.
    pub faults: Vec<Arc<curb_net::LinkFaults>>,
    /// Per-node metric registries (index = controller id) — each
    /// node's consensus runners publish into its own.
    pub registries: Vec<curb_telemetry::Registry>,
    /// Per-node introspection endpoints (index = controller id): the
    /// `health`/`metrics`/`flight` line protocol, queryable with
    /// [`crate::introspect::query`].
    pub introspect: Vec<IntrospectServer>,
}

impl Cluster {
    /// Bootstraps and launches the full cluster on `topo`.
    ///
    /// # Errors
    ///
    /// [`SetupError`] if Step 0 fails; listener/bind failures panic
    /// (they indicate a broken test environment, not protocol state).
    ///
    /// # Panics
    ///
    /// Panics if loopback listeners cannot be bound.
    pub fn launch(topo: &Internet2, cfg: ClusterConfig) -> Result<Cluster, SetupError> {
        let boot = bootstrap(topo, cfg.curb.clone())?;
        Ok(Cluster::launch_with(boot, &cfg))
    }

    /// Launches the cluster from an already-built [`Bootstrap`] — e.g.
    /// the pinned layout of [`bootstrap_pinned`].
    ///
    /// # Panics
    ///
    /// Panics if loopback listeners cannot be bound.
    pub fn launch_with(boot: Bootstrap, cfg: &ClusterConfig) -> Cluster {
        let Bootstrap { shared, epoch } = boot;
        let n = shared.plan.n_controllers;

        // One backbone listener + one southbound listener per node,
        // all ephemeral loopback ports.
        let backbone: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind backbone listener"))
            .collect();
        let backbone_addrs: Vec<SocketAddr> = backbone
            .iter()
            .map(|l| l.local_addr().expect("backbone addr"))
            .collect();
        let southbound: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind southbound listener"))
            .collect();
        let sb_addrs: Vec<SocketAddr> = southbound
            .iter()
            .map(|l| l.local_addr().expect("southbound addr"))
            .collect();

        let mux_cfg = MuxConfig {
            // The protocol seed doubles as the cluster instance id:
            // nodes of a differently-seeded cluster are rejected at
            // the wire handshake.
            cluster_id: shared.config.seed,
            shards: cfg.shards,
            ..MuxConfig::default()
        };

        let mut nodes = Vec::with_capacity(n);
        let mut faults = Vec::with_capacity(n);
        let mut registries = Vec::with_capacity(n);
        let mut introspect = Vec::with_capacity(n);
        for (c, (listener, sb_listener)) in backbone.into_iter().zip(southbound).enumerate() {
            let mux: MuxTransport<Batch<CtrlPayload>> =
                MuxTransport::bind(c, listener, backbone_addrs.clone(), mux_cfg.clone())
                    .expect("bind mux transport");
            // Grab the fault handle before the mux moves into the
            // node; it stays valid for the transport's lifetime.
            faults.push(mux.faults());
            // A fresh registry per node: cloning the one in `cfg.node`
            // would share a single store across every controller.
            let registry = curb_telemetry::Registry::new();
            let node_cfg = NodeConfig {
                behavior: cfg.behaviors.get(c).copied().unwrap_or_default(),
                registry: registry.clone(),
                ..cfg.node.clone()
            };
            let node = ControllerNode::spawn(
                c,
                Arc::clone(&shared),
                Arc::clone(&epoch),
                mux,
                sb_listener,
                node_cfg,
            );
            introspect.push(IntrospectServer::spawn(IntrospectState {
                node: format!("ctrl{c}"),
                registry: registry.clone(),
                probe: Arc::clone(&node.probe),
            }));
            registries.push(registry);
            nodes.push(node);
        }

        let (events_tx, events) = channel();
        let mut agents = Vec::with_capacity(shared.plan.n_switches);
        for s in 0..shared.plan.n_switches {
            let sid = SwitchId(s);
            let mut agent_cfg = AgentConfig::new(sid, shared.accept_f() + 1);
            agent_cfg.request_timeout = cfg.request_timeout;
            agent_cfg.lazy_margin_ns = shared.config.lazy_margin.as_nanos() as u64;
            agent_cfg.suspect_threshold = shared.config.suspect_threshold;
            agent_cfg.lazy_patience = shared.config.lazy_patience;
            agents.push(SAgent::spawn(
                agent_cfg,
                epoch.ctrl_list(sid).to_vec(),
                sb_addrs.clone(),
                events_tx.clone(),
            ));
        }

        Cluster {
            shared,
            epoch0: epoch,
            nodes,
            agents,
            events,
            faults,
            registries,
            introspect,
        }
    }

    /// The introspection endpoint addresses, by controller id.
    pub fn introspect_addrs(&self) -> Vec<std::net::SocketAddr> {
        self.introspect.iter().map(|s| s.addr()).collect()
    }

    /// Raises a PACKET_IN at switch `switch` for `dst_host`.
    pub fn pkt_in(&self, switch: SwitchId, dst_host: u32) {
        if let Some(agent) = self.agents.get(switch.0) {
            agent.pkt_in(dst_host);
        }
    }

    /// The highest chain height any node reports.
    pub fn max_height(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.probe.height.load(std::sync::atomic::Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// The highest epoch number any node reports.
    pub fn max_epoch(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.probe.epoch.load(std::sync::atomic::Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Stops every agent, node and introspection endpoint.
    pub fn shutdown(self) {
        for agent in self.agents {
            agent.join();
        }
        for node in self.nodes {
            node.join();
        }
        for server in self.introspect {
            server.join();
        }
    }
}

//! Wire codecs for the two cluster-only protocols.
//!
//! * **Southbound** ([`SbMsg`]) — the s-agent ↔ controller protocol:
//!   length-prefixed frames on a dedicated TCP connection per
//!   (switch, controller) pair. An agent opens with [`SbMsg::Hello`],
//!   broadcasts [`SbMsg::Request`] to every controller in its list, and
//!   collects [`SbMsg::Reply`] until `f + 1` identical configurations
//!   arrive (Algorithm 1's accept rule).
//! * **East-west** ([`ClusterMsg`]) — controller ↔ controller messages
//!   that are *not* consensus traffic, carried on the shared
//!   transport's [`APP_LANE`]: the group leader's post-commit `AGREE`
//!   hand-off to the final committee and the final committee's block
//!   announcement to every node.
//!
//! Both codecs are total: any byte string decodes to `Some` or `None`,
//! never a panic — a byzantine peer controls every byte.
//!
//! [`APP_LANE`]: curb_net::APP_LANE

use curb_chain::Block;
use curb_consensus::PayloadCodec;
use curb_core::payload::{decode_block, encode_block};
use curb_core::{ConfigData, RequestKey, RequestRecord, SwitchId, TxListPayload};
use curb_telemetry::TraceCtx;

/// High bit marking a synthetic [`RequestKey::seq`] used for
/// controller-initiated REPLYs: when a reassignment commits, every
/// controller serving a switch (under the outgoing or the incoming
/// assignment) pushes the new assignment to it under
/// `ANNOUNCE_SEQ_BIT | epoch` — only the accusing agent has a pending
/// RE-ASS request to match a direct reply, the rest learn the rotation
/// from these announcements, under the same `f + 1` identical-config
/// accept rule. Agent-issued sequence numbers start at 1 and count up,
/// so the bit cannot collide.
pub const ANNOUNCE_SEQ_BIT: u64 = 1 << 63;

/// A southbound frame body (agent ↔ controller).
#[derive(Debug, Clone, PartialEq)]
pub enum SbMsg {
    /// Agent → controller, first frame: identifies the issuing switch
    /// so the controller can route replies for it onto this
    /// connection.
    Hello {
        /// The switch this agent fronts.
        switch: u64,
    },
    /// Agent → controller: a PKT-IN or RE-ASS request.
    Request {
        /// The request.
        record: RequestRecord,
        /// The round's trace context, minted by the issuing agent.
        /// Observability metadata only: excluded from every digest and
        /// from the request's signing bytes.
        ctx: TraceCtx,
    },
    /// Controller → agent: the configuration committed for `key`, as
    /// claimed by `controller`. Agents accept on `f + 1` identical
    /// configs and flag contradictors as byzantine evidence.
    Reply {
        /// The replying controller.
        controller: u64,
        /// The request this reply answers.
        key: RequestKey,
        /// The (claimed) committed configuration.
        config: ConfigData,
        /// The round's trace context, echoed back one hop further
        /// along ([`TraceCtx::NONE`] for controller-initiated
        /// announcements).
        ctx: TraceCtx,
    },
}

impl SbMsg {
    /// Encodes this message as one frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            SbMsg::Hello { switch } => {
                out.push(0);
                out.extend_from_slice(&switch.to_be_bytes());
            }
            SbMsg::Request { record, ctx } => {
                out.push(1);
                out.extend_from_slice(&record.signing_bytes());
                ctx.encode_to(&mut out);
            }
            SbMsg::Reply {
                controller,
                key,
                config,
                ctx,
            } => {
                out.push(2);
                out.extend_from_slice(&controller.to_be_bytes());
                out.extend_from_slice(&(key.switch.0 as u64).to_be_bytes());
                out.extend_from_slice(&key.seq.to_be_bytes());
                out.extend_from_slice(&config.encode());
                ctx.encode_to(&mut out);
            }
        }
        out
    }

    /// Decodes one frame body. `None` on malformed or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Option<SbMsg> {
        let (tag, mut rest) = bytes.split_first()?;
        let msg = match tag {
            0 => SbMsg::Hello {
                switch: take_u64(&mut rest)?,
            },
            1 => SbMsg::Request {
                record: RequestRecord::decode(&mut rest)?,
                ctx: TraceCtx::decode(&mut rest)?,
            },
            2 => {
                let controller = take_u64(&mut rest)?;
                let switch = take_u64(&mut rest)? as usize;
                let seq = take_u64(&mut rest)?;
                let config = ConfigData::decode(&mut rest)?;
                let ctx = TraceCtx::decode(&mut rest)?;
                SbMsg::Reply {
                    controller,
                    key: RequestKey {
                        switch: SwitchId(switch),
                        seq,
                    },
                    config,
                    ctx,
                }
            }
            _ => return None,
        };
        if !rest.is_empty() {
            return None;
        }
        Some(msg)
    }
}

/// An east-west app-lane message between controller nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterMsg {
    /// Group leader → final-committee leader after an intra-group
    /// commit: the agreed transaction list, ready for block inclusion
    /// (the paper's Step 3 hand-off).
    Agree {
        /// Epoch the intra-group instance belonged to.
        epoch: u64,
        /// The originating controller group.
        group: u64,
        /// Trace contexts, one per transaction in `txs` (in order).
        /// Observability metadata only — never digested or signed.
        ctxs: Vec<TraceCtx>,
        /// The intra-group-committed transactions.
        txs: TxListPayload,
    },
    /// Final-committee member → everyone after a final commit: the
    /// appended block. Nodes outside the committee adopt a block once
    /// `f + 1` distinct committee members announce the same one.
    FinalBlock {
        /// Epoch whose final committee certified the block.
        epoch: u64,
        /// The certified block.
        block: Block,
    },
    /// Group member → its group's current leader: a southbound request
    /// that arrived at a follower, relayed to the controller that can
    /// actually propose it (PBFT's client-request forwarding). Covers
    /// an agent whose stale controller list overlaps the current group
    /// but no longer contains its leader — the members it can still
    /// reach hand the request on instead of dropping it.
    Forward {
        /// The relayed request.
        record: RequestRecord,
        /// The request's trace context, relayed unchanged.
        ctx: TraceCtx,
    },
}

impl ClusterMsg {
    /// Encodes this message as one app-lane payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ClusterMsg::Agree {
                epoch,
                group,
                ctxs,
                txs,
            } => {
                out.push(0);
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&group.to_be_bytes());
                // Contexts go before the tx list: the tx codec
                // consumes the remainder of the buffer.
                out.extend_from_slice(&(ctxs.len() as u32).to_be_bytes());
                for ctx in ctxs {
                    ctx.encode_to(&mut out);
                }
                txs.encode_payload(&mut out);
            }
            ClusterMsg::FinalBlock { epoch, block } => {
                out.push(1);
                out.extend_from_slice(&epoch.to_be_bytes());
                encode_block(&mut out, block);
            }
            ClusterMsg::Forward { record, ctx } => {
                out.push(2);
                out.extend_from_slice(&record.signing_bytes());
                ctx.encode_to(&mut out);
            }
        }
        out
    }

    /// Decodes one app-lane payload. `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<ClusterMsg> {
        let (tag, mut rest) = bytes.split_first()?;
        match tag {
            0 => {
                let epoch = take_u64(&mut rest)?;
                let group = take_u64(&mut rest)?;
                let count = take_u32(&mut rest)?;
                let mut ctxs = Vec::new();
                for _ in 0..count {
                    // Decode-as-you-go: a hostile count fails on the
                    // first missing context instead of pre-allocating.
                    ctxs.push(TraceCtx::decode(&mut rest)?);
                }
                let txs = TxListPayload::decode_payload(rest)?;
                if ctxs.len() != txs.0.len() {
                    return None;
                }
                Some(ClusterMsg::Agree {
                    epoch,
                    group,
                    ctxs,
                    txs,
                })
            }
            1 => {
                let epoch = take_u64(&mut rest)?;
                let block = decode_block(&mut rest)?;
                if !rest.is_empty() {
                    return None;
                }
                Some(ClusterMsg::FinalBlock { epoch, block })
            }
            2 => {
                let record = RequestRecord::decode(&mut rest)?;
                let ctx = TraceCtx::decode(&mut rest)?;
                if !rest.is_empty() {
                    return None;
                }
                Some(ClusterMsg::Forward { record, ctx })
            }
            _ => None,
        }
    }
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    if buf.len() < 8 {
        return None;
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Some(u64::from_be_bytes(head.try_into().ok()?))
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Some(u32::from_be_bytes(head.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_core::{FlowRuleSpec, ProtoTx, ReqKind};

    fn record(seq: u64) -> RequestRecord {
        RequestRecord {
            key: RequestKey {
                switch: SwitchId(3),
                seq,
            },
            kind: ReqKind::PktIn { dst_host: 12 },
        }
    }

    #[test]
    fn southbound_roundtrip() {
        let msgs = [
            SbMsg::Hello { switch: 9 },
            SbMsg::Request {
                record: record(4),
                ctx: TraceCtx::mint(3, 77),
            },
            SbMsg::Request {
                record: RequestRecord {
                    key: RequestKey {
                        switch: SwitchId(1),
                        seq: 2,
                    },
                    kind: ReqKind::ReAss {
                        accused: vec![0, 3],
                    },
                },
                ctx: TraceCtx::NONE,
            },
            SbMsg::Reply {
                controller: 2,
                key: record(4).key,
                config: ConfigData::FlowRules(vec![FlowRuleSpec {
                    priority: 10,
                    dst_host: 12,
                    out_port: 3,
                }]),
                ctx: TraceCtx::mint(3, 77).next_hop(),
            },
        ];
        for msg in msgs {
            assert_eq!(SbMsg::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn east_west_roundtrip() {
        let tx = ProtoTx {
            record: record(1),
            handled_by: 0,
            config: ConfigData::FlowRules(vec![]),
        };
        let genesis = Block::genesis(b"init");
        let block = Block::next(&genesis, vec![tx.to_chain_tx()], 77);
        let msgs = [
            ClusterMsg::Agree {
                epoch: 1,
                group: 0,
                ctxs: vec![TraceCtx::mint(3, 9).next_hop()],
                txs: TxListPayload(vec![tx]),
            },
            ClusterMsg::FinalBlock { epoch: 1, block },
            ClusterMsg::Forward {
                record: record(6),
                ctx: TraceCtx::mint(3, 6),
            },
        ];
        for msg in msgs {
            assert_eq!(ClusterMsg::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn agree_ctx_count_must_match_txs() {
        let tx = ProtoTx {
            record: record(1),
            handled_by: 0,
            config: ConfigData::FlowRules(vec![]),
        };
        let msg = ClusterMsg::Agree {
            epoch: 1,
            group: 0,
            ctxs: vec![TraceCtx::mint(3, 9)],
            txs: TxListPayload(vec![tx]),
        };
        let mut bytes = msg.encode();
        // Bump the context count without adding a context: the count
        // now points into the tx list and the decode must reject it.
        bytes[17..21].copy_from_slice(&2u32.to_be_bytes());
        assert_eq!(ClusterMsg::decode(&bytes), None);
    }

    #[test]
    fn hostile_bytes_never_panic() {
        for bytes in [
            &[][..],
            &[7][..],
            &[0][..],
            &[1, 2, 3][..],
            &[2, 0, 0][..],
            &[0xFF; 40][..],
        ] {
            let _ = SbMsg::decode(bytes);
            let _ = ClusterMsg::decode(bytes);
        }
        // Trailing garbage is rejected, not silently accepted.
        let mut bytes = SbMsg::Hello { switch: 1 }.encode();
        bytes.push(0);
        assert_eq!(SbMsg::decode(&bytes), None);
    }
}

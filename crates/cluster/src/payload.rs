//! The one payload type every consensus lane of a controller node
//! agrees on.
//!
//! A node multiplexes all of its consensus instances — one intra-group
//! instance per controller group it belongs to, plus the final
//! committee — over a single [`MuxTransport`]. The transport is generic
//! over exactly one payload type, so the two Curb payloads
//! ([`TxListPayload`] for intra-group rounds, [`BlockPayload`] for the
//! final committee) are wrapped into [`CtrlPayload`]: lanes carrying
//! transaction lists and lanes carrying blocks share wire plumbing
//! without sharing consensus state.
//!
//! Intra-group proposals additionally carry one [`TraceCtx`] per
//! transaction so the round's correlation key survives the consensus
//! hop. The contexts are **observability metadata**: they ride in the
//! wire encoding but are excluded from [`Payload::digest`], so tracing
//! can never change what the replicas agree on (and a commit
//! certificate still verifies a payload whose contexts differ).
//!
//! [`MuxTransport`]: curb_net::MuxTransport

use curb_consensus::{Payload, PayloadCodec};
use curb_core::{BlockPayload, TxListPayload};
use curb_crypto::sha256::{digest_parts, Digest};
use curb_telemetry::TraceCtx;

/// Either Curb consensus payload, tagged so intra-group and final
/// lanes can share one transport type.
///
/// The [`Default`] value is the empty transaction list — the no-op
/// filler view changes commit into sequence holes, on either kind of
/// lane.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlPayload {
    /// An intra-group transaction list (Algorithm 3's `txList`).
    Txs {
        /// The proposed transactions.
        txs: TxListPayload,
        /// One trace context per transaction (same order). Not part of
        /// the digest; decoders reject a count mismatch.
        ctxs: Vec<TraceCtx>,
    },
    /// A final-committee block proposal.
    Block(BlockPayload),
}

impl CtrlPayload {
    /// An intra-group proposal with every context absent — for filler
    /// payloads and call sites that have nothing to correlate.
    pub fn txs_untraced(txs: TxListPayload) -> CtrlPayload {
        let ctxs = vec![TraceCtx::NONE; txs.0.len()];
        CtrlPayload::Txs { txs, ctxs }
    }
}

impl Default for CtrlPayload {
    fn default() -> Self {
        CtrlPayload::txs_untraced(TxListPayload::default())
    }
}

impl Payload for CtrlPayload {
    fn digest(&self) -> Digest {
        // Domain-separate the variants so a transaction list can never
        // collide with a block proposal in prepare/commit references.
        // Trace contexts are deliberately left out: replicas agree on
        // the transactions, not on who is watching them.
        match self {
            CtrlPayload::Txs { txs, .. } => digest_parts(&[b"ctrl-txs", &txs.digest().0]),
            CtrlPayload::Block(block) => digest_parts(&[b"ctrl-block", &block.digest().0]),
        }
    }

    fn wire_size(&self) -> usize {
        1 + match self {
            CtrlPayload::Txs { txs, ctxs } => 4 + ctxs.len() * TraceCtx::WIRE_LEN + txs.wire_size(),
            CtrlPayload::Block(block) => block.wire_size(),
        }
    }
}

impl PayloadCodec for CtrlPayload {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            CtrlPayload::Txs { txs, ctxs } => {
                out.push(0);
                // Contexts go before the tx list: the tx codec
                // consumes the remainder of the buffer.
                out.extend_from_slice(&(ctxs.len() as u32).to_be_bytes());
                for ctx in ctxs {
                    ctx.encode_to(out);
                }
                txs.encode_payload(out);
            }
            CtrlPayload::Block(block) => {
                out.push(1);
                block.encode_payload(out);
            }
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let (tag, mut rest) = bytes.split_first()?;
        match tag {
            0 => {
                if rest.len() < 4 {
                    return None;
                }
                let (head, tail) = rest.split_at(4);
                rest = tail;
                let count = u32::from_be_bytes(head.try_into().ok()?);
                let mut ctxs = Vec::new();
                for _ in 0..count {
                    // Decode-as-you-go: a hostile count fails on the
                    // first missing context instead of pre-allocating.
                    ctxs.push(TraceCtx::decode(&mut rest)?);
                }
                let txs = TxListPayload::decode_payload(rest)?;
                if ctxs.len() != txs.0.len() {
                    return None;
                }
                Some(CtrlPayload::Txs { txs, ctxs })
            }
            1 => BlockPayload::decode_payload(rest).map(CtrlPayload::Block),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_chain::Block;
    use curb_core::{ConfigData, ProtoTx, ReqKind, RequestKey, RequestRecord, SwitchId};

    fn sample_tx() -> ProtoTx {
        ProtoTx {
            record: RequestRecord {
                key: RequestKey {
                    switch: SwitchId(2),
                    seq: 7,
                },
                kind: ReqKind::PktIn { dst_host: 5 },
            },
            handled_by: 1,
            config: ConfigData::FlowRules(vec![]),
        }
    }

    #[test]
    fn roundtrips_both_variants() {
        let genesis = Block::genesis(b"init");
        let block = Block::next(&genesis, vec![sample_tx().to_chain_tx()], 9);
        let payloads = [
            CtrlPayload::default(),
            CtrlPayload::Txs {
                txs: TxListPayload(vec![sample_tx()]),
                ctxs: vec![TraceCtx::mint(2, 7).next_hop()],
            },
            CtrlPayload::txs_untraced(TxListPayload(vec![sample_tx()])),
            CtrlPayload::Block(BlockPayload(None)),
            CtrlPayload::Block(BlockPayload(Some(block))),
        ];
        for p in payloads {
            let mut bytes = Vec::new();
            p.encode_payload(&mut bytes);
            assert_eq!(CtrlPayload::decode_payload(&bytes), Some(p));
        }
    }

    #[test]
    fn variants_never_collide_on_digest() {
        let txs = CtrlPayload::default();
        let block = CtrlPayload::Block(BlockPayload(None));
        assert_ne!(txs.digest(), block.digest());
    }

    #[test]
    fn trace_ctx_does_not_change_the_digest() {
        let traced = CtrlPayload::Txs {
            txs: TxListPayload(vec![sample_tx()]),
            ctxs: vec![TraceCtx::mint(9, 42)],
        };
        let untraced = CtrlPayload::txs_untraced(TxListPayload(vec![sample_tx()]));
        assert_eq!(
            traced.digest(),
            untraced.digest(),
            "contexts are observability metadata, not consensus content"
        );
        assert_ne!(
            {
                let mut b = Vec::new();
                traced.encode_payload(&mut b);
                b
            },
            {
                let mut b = Vec::new();
                untraced.encode_payload(&mut b);
                b
            },
            "but they do ride in the wire bytes"
        );
    }

    #[test]
    fn ctx_count_mismatch_is_rejected() {
        let mut bytes = Vec::new();
        CtrlPayload::txs_untraced(TxListPayload(vec![sample_tx()])).encode_payload(&mut bytes);
        // Bump the context count without adding a context.
        bytes[1..5].copy_from_slice(&2u32.to_be_bytes());
        assert_eq!(CtrlPayload::decode_payload(&bytes), None);
    }

    #[test]
    fn hostile_bytes_never_panic() {
        for bytes in [
            &[][..],
            &[9][..],
            &[0, 1][..],
            &[0, 0, 0, 0, 1][..],
            &[0xFF; 30][..],
            &[1, 1, 2, 3][..],
        ] {
            let _ = CtrlPayload::decode_payload(bytes);
        }
    }
}

//! The one payload type every consensus lane of a controller node
//! agrees on.
//!
//! A node multiplexes all of its consensus instances — one intra-group
//! instance per controller group it belongs to, plus the final
//! committee — over a single [`MuxTransport`]. The transport is generic
//! over exactly one payload type, so the two Curb payloads
//! ([`TxListPayload`] for intra-group rounds, [`BlockPayload`] for the
//! final committee) are wrapped into [`CtrlPayload`]: lanes carrying
//! transaction lists and lanes carrying blocks share wire plumbing
//! without sharing consensus state.
//!
//! [`MuxTransport`]: curb_net::MuxTransport

use curb_consensus::{Payload, PayloadCodec};
use curb_core::{BlockPayload, TxListPayload};
use curb_crypto::sha256::{digest_parts, Digest};

/// Either Curb consensus payload, tagged so intra-group and final
/// lanes can share one transport type.
///
/// The [`Default`] value is the empty transaction list — the no-op
/// filler view changes commit into sequence holes, on either kind of
/// lane.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlPayload {
    /// An intra-group transaction list (Algorithm 3's `txList`).
    Txs(TxListPayload),
    /// A final-committee block proposal.
    Block(BlockPayload),
}

impl Default for CtrlPayload {
    fn default() -> Self {
        CtrlPayload::Txs(TxListPayload::default())
    }
}

impl Payload for CtrlPayload {
    fn digest(&self) -> Digest {
        // Domain-separate the variants so a transaction list can never
        // collide with a block proposal in prepare/commit references.
        match self {
            CtrlPayload::Txs(txs) => digest_parts(&[b"ctrl-txs", &txs.digest().0]),
            CtrlPayload::Block(block) => digest_parts(&[b"ctrl-block", &block.digest().0]),
        }
    }

    fn wire_size(&self) -> usize {
        1 + match self {
            CtrlPayload::Txs(txs) => txs.wire_size(),
            CtrlPayload::Block(block) => block.wire_size(),
        }
    }
}

impl PayloadCodec for CtrlPayload {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            CtrlPayload::Txs(txs) => {
                out.push(0);
                txs.encode_payload(out);
            }
            CtrlPayload::Block(block) => {
                out.push(1);
                block.encode_payload(out);
            }
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let (tag, rest) = bytes.split_first()?;
        match tag {
            0 => TxListPayload::decode_payload(rest).map(CtrlPayload::Txs),
            1 => BlockPayload::decode_payload(rest).map(CtrlPayload::Block),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_chain::Block;
    use curb_core::{ConfigData, ProtoTx, ReqKind, RequestKey, RequestRecord, SwitchId};

    fn sample_tx() -> ProtoTx {
        ProtoTx {
            record: RequestRecord {
                key: RequestKey {
                    switch: SwitchId(2),
                    seq: 7,
                },
                kind: ReqKind::PktIn { dst_host: 5 },
            },
            handled_by: 1,
            config: ConfigData::FlowRules(vec![]),
        }
    }

    #[test]
    fn roundtrips_both_variants() {
        let genesis = Block::genesis(b"init");
        let block = Block::next(&genesis, vec![sample_tx().to_chain_tx()], 9);
        let payloads = [
            CtrlPayload::default(),
            CtrlPayload::Txs(TxListPayload(vec![sample_tx()])),
            CtrlPayload::Block(BlockPayload(None)),
            CtrlPayload::Block(BlockPayload(Some(block))),
        ];
        for p in payloads {
            let mut bytes = Vec::new();
            p.encode_payload(&mut bytes);
            assert_eq!(CtrlPayload::decode_payload(&bytes), Some(p));
        }
    }

    #[test]
    fn variants_never_collide_on_digest() {
        let txs = CtrlPayload::Txs(TxListPayload::default());
        let block = CtrlPayload::Block(BlockPayload(None));
        assert_ne!(txs.digest(), block.digest());
    }

    #[test]
    fn hostile_bytes_never_panic() {
        for bytes in [&[][..], &[9][..], &[0, 1][..], &[1, 1, 2, 3][..]] {
            let _ = CtrlPayload::decode_payload(bytes);
        }
    }
}

//! Durable chain storage for a controller node: the in-memory
//! [`Blockchain`] fronted by a write-ahead log plus periodic whole-chain
//! snapshots, so a crashed controller reboots with its committed prefix
//! intact instead of replaying the cluster's entire history.
//!
//! Layout under the store directory:
//!
//! ```text
//! chain.snap            full chain snapshot (codec bytes, tmp+rename)
//! wal-{seq:016x}.seg    WAL segments; one record per appended block
//! ```
//!
//! Every appended block is WAL-logged *before* the append returns;
//! fsync batching happens on the WAL's flusher thread, so the node's
//! main loop never blocks on the disk. Every `snapshot_every` appends
//! the store syncs the WAL, rewrites `chain.snap` atomically and GCs
//! the WAL segments the snapshot now covers — bounding disk usage the
//! same way stable checkpoints bound the consensus log in memory.

use curb_chain::{Block, Blockchain, ChainError, Wal, WalConfig, WalStats};
use std::fs;
use std::io;
use std::path::PathBuf;

/// Durability configuration for a [`ChainStore`].
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the snapshot and WAL segments (created on
    /// open).
    pub dir: PathBuf,
    /// WAL sizing and fsync batching knobs.
    pub wal: WalConfig,
    /// Rewrite the chain snapshot and GC the WAL every this many
    /// appends. `0` disables snapshotting (the WAL grows unbounded).
    pub snapshot_every: u64,
}

impl PersistConfig {
    /// A config with default WAL knobs, snapshotting every 64 blocks.
    pub fn new(dir: PathBuf) -> Self {
        PersistConfig {
            dir,
            wal: WalConfig::default(),
            snapshot_every: 64,
        }
    }
}

/// Counters describing what a [`ChainStore::open`] recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Chain height restored from the snapshot file.
    pub snapshot_height: u64,
    /// Blocks replayed from the WAL on top of the snapshot.
    pub wal_replayed: u64,
}

/// The node-facing chain handle: an in-memory [`Blockchain`] with
/// optional write-behind durability. Constructed [`ephemeral`] it is a
/// plain wrapper (tests, benches); constructed via [`open`] every
/// append is WAL-logged and periodically folded into a snapshot.
///
/// [`ephemeral`]: ChainStore::ephemeral
/// [`open`]: ChainStore::open
pub struct ChainStore {
    chain: Blockchain,
    durable: Option<Durable>,
    recovery: RecoveryInfo,
}

struct Durable {
    wal: Wal,
    cfg: PersistConfig,
    appends_since_snapshot: u64,
}

impl ChainStore {
    /// A purely in-memory store seeded with the given genesis record.
    pub fn ephemeral(genesis_record: &[u8]) -> ChainStore {
        ChainStore {
            chain: Blockchain::with_genesis(genesis_record),
            durable: None,
            recovery: RecoveryInfo::default(),
        }
    }

    /// Opens (or creates) a durable store: loads `chain.snap` if
    /// present (else starts from the genesis record), then replays
    /// WAL records above the snapshot height. Torn WAL tails are
    /// truncated by the WAL itself; a WAL block that fails chain
    /// validation stops the replay at the last good height (the blocks
    /// after it were never acknowledged as part of the prefix).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the snapshot or WAL files, and
    /// reports a corrupt snapshot as [`io::ErrorKind::InvalidData`].
    pub fn open(cfg: PersistConfig, genesis_record: &[u8]) -> io::Result<ChainStore> {
        fs::create_dir_all(&cfg.dir)?;
        let snap_path = cfg.dir.join("chain.snap");
        let mut chain = match fs::read(&snap_path) {
            Ok(bytes) => Blockchain::from_bytes(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                Blockchain::with_genesis(genesis_record)
            }
            Err(e) => return Err(e),
        };
        let snapshot_height = chain.height();
        let (wal, records) = Wal::open(&cfg.dir, cfg.wal.clone())?;
        let mut wal_replayed = 0u64;
        for record in records {
            if record.seq <= chain.height() {
                continue; // already inside the snapshot
            }
            let Ok(block) = Block::from_bytes(&record.bytes) else {
                break;
            };
            if chain.append(block).is_err() {
                break;
            }
            wal_replayed += 1;
        }
        Ok(ChainStore {
            chain,
            durable: Some(Durable {
                wal,
                cfg,
                appends_since_snapshot: 0,
            }),
            recovery: RecoveryInfo {
                snapshot_height,
                wal_replayed,
            },
        })
    }

    /// The in-memory chain (read side).
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Current chain height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.chain.height()
    }

    /// The tip block.
    pub fn tip(&self) -> &Block {
        self.chain.tip()
    }

    /// What [`ChainStore::open`] recovered (zeroes for ephemeral
    /// stores).
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Live WAL flusher counters (zeroes for ephemeral stores).
    pub fn wal_stats(&self) -> WalStats {
        self.durable
            .as_ref()
            .map(|d| d.wal.stats())
            .unwrap_or_default()
    }

    /// Appends a block to the chain; on success the block is handed to
    /// the WAL (write-behind — the fsync is batched on the flusher
    /// thread) and, every `snapshot_every` appends, folded into the
    /// snapshot file with the covered WAL segments GC'd.
    ///
    /// # Errors
    ///
    /// Returns the chain's validation error unchanged; nothing is
    /// persisted for a rejected block.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let bytes = block.to_bytes();
        self.chain.append(block)?;
        let height = self.chain.height();
        if let Some(durable) = &mut self.durable {
            durable.wal.append(height, &bytes);
            durable.appends_since_snapshot += 1;
            if durable.cfg.snapshot_every > 0
                && durable.appends_since_snapshot >= durable.cfg.snapshot_every
            {
                durable.appends_since_snapshot = 0;
                let _ = write_snapshot(durable, &self.chain);
            }
        }
        Ok(())
    }

    /// Forces the WAL durable and rewrites the snapshot now.
    ///
    /// # Errors
    ///
    /// Surfaces WAL or snapshot I/O failures. A no-op for ephemeral
    /// stores.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(durable) = &mut self.durable {
            durable.appends_since_snapshot = 0;
            write_snapshot(durable, &self.chain)?;
        }
        Ok(())
    }
}

/// Syncs the WAL, atomically replaces `chain.snap`, then GCs WAL
/// segments fully covered by the snapshot.
fn write_snapshot(durable: &mut Durable, chain: &Blockchain) -> io::Result<()> {
    // The WAL must be durable up to the snapshot height first: the
    // snapshot claims that prefix, and GC is about to delete the
    // segments that could otherwise re-derive it.
    durable.wal.sync()?;
    let snap_path = durable.cfg.dir.join("chain.snap");
    let tmp_path = durable.cfg.dir.join("chain.snap.tmp");
    fs::write(&tmp_path, chain.to_bytes())?;
    fs::rename(&tmp_path, &snap_path)?;
    durable.wal.gc(chain.height());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_chain::Transaction;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("curb-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn push_block(store: &mut ChainStore, i: u64) {
        let tx = Transaction::new(
            curb_chain::RequestKind::PacketIn,
            i,
            i,
            format!("cfg-{i}").into_bytes(),
        );
        let block = Block::next(store.tip(), vec![tx], i);
        store.append(block).expect("append valid block");
    }

    #[test]
    fn reopen_restores_the_full_prefix() {
        let dir = temp_dir("reopen");
        let cfg = PersistConfig {
            snapshot_every: 4,
            ..PersistConfig::new(dir.clone())
        };
        let tip_hash;
        {
            let mut store = ChainStore::open(cfg.clone(), b"genesis").unwrap();
            for i in 1..=10 {
                push_block(&mut store, i);
            }
            store.sync().unwrap();
            tip_hash = store.tip().hash();
            assert_eq!(store.height(), 10);
        }
        let store = ChainStore::open(cfg, b"genesis").unwrap();
        assert_eq!(store.height(), 10);
        assert_eq!(store.tip().hash(), tip_hash);
        assert!(store.chain().verify().is_ok());
        // Everything came from the snapshot written by sync().
        assert_eq!(store.recovery().snapshot_height, 10);
        assert_eq!(store.recovery().wal_replayed, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_replays_blocks_above_the_snapshot() {
        let dir = temp_dir("replay");
        let cfg = PersistConfig {
            snapshot_every: 0, // never snapshot: everything rides the WAL
            ..PersistConfig::new(dir.clone())
        };
        {
            let mut store = ChainStore::open(cfg.clone(), b"genesis").unwrap();
            for i in 1..=7 {
                push_block(&mut store, i);
            }
            // No sync(): rely on the drop-time WAL flush alone.
        }
        let store = ChainStore::open(cfg, b"genesis").unwrap();
        assert_eq!(store.height(), 7);
        assert_eq!(store.recovery().snapshot_height, 0);
        assert_eq!(store.recovery().wal_replayed, 7);
        assert!(store.chain().verify().is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshotting_gcs_wal_segments() {
        let dir = temp_dir("gc");
        let cfg = PersistConfig {
            wal: WalConfig {
                segment_bytes: 200,
                ..WalConfig::default()
            },
            snapshot_every: 3,
            ..PersistConfig::new(dir.clone())
        };
        let mut store = ChainStore::open(cfg, b"genesis").unwrap();
        for i in 1..=30 {
            push_block(&mut store, i);
        }
        store.sync().unwrap();
        assert!(
            store.wal_stats().segments_deleted > 0,
            "snapshots GC the WAL"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ephemeral_store_appends_without_disk() {
        let mut store = ChainStore::ephemeral(b"genesis");
        for i in 1..=5 {
            push_block(&mut store, i);
        }
        assert_eq!(store.height(), 5);
        assert_eq!(store.wal_stats(), WalStats::default());
        store.sync().unwrap();
    }
}

//! Per-node introspection plane: a tiny line-protocol TCP endpoint.
//!
//! Every [`ControllerNode`](crate::ControllerNode) launched by a
//! [`Cluster`](crate::Cluster) gets one [`IntrospectServer`] bound to
//! an ephemeral loopback port. The protocol is one command per
//! connection — the client writes a single line, the server writes its
//! answer and closes:
//!
//! * `health` — one flat-JSON line with the node's live counters
//!   (chain height, epoch, blocks appended, proposals made, WAL
//!   records/bytes/fsyncs and the prefix restored from disk at boot).
//! * `metrics` — one flat-JSON line: the node's metric [`Registry`]
//!   rendered by [`Registry::to_json`] (counters, gauges, histogram
//!   `p50`/`p99` summaries), prefixed with the node's name.
//! * `flight` — the process flight recorder's current contents as
//!   JSONL (events and recent spans, oldest first); empty output when
//!   no recorder is installed.
//!
//! Answers are plain text over TCP so `nc 127.0.0.1 <port>` works as a
//! debugger; [`query`] is the programmatic client.

use crate::node::NodeProbe;
use curb_telemetry::{flight_recorder, Registry};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Everything one node's introspection endpoint can report on.
#[derive(Clone)]
pub struct IntrospectState {
    /// The node's name, as it appears in distributed traces
    /// (`ctrl<id>`).
    pub node: String,
    /// The node's metric registry (shared with its consensus runners).
    pub registry: Registry,
    /// The node's live protocol counters.
    pub probe: Arc<NodeProbe>,
}

/// A running introspection endpoint. Dropping (or [`join`ing]) the
/// handle stops the acceptor thread.
///
/// [`join`ing]: IntrospectServer::join
pub struct IntrospectServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl IntrospectServer {
    /// Binds an ephemeral loopback listener and serves `state` on it.
    ///
    /// # Panics
    ///
    /// Panics if the listener cannot be bound or the acceptor thread
    /// cannot spawn — both indicate a broken test environment.
    pub fn spawn(state: IntrospectState) -> IntrospectServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind introspect listener");
        let addr = listener.local_addr().expect("introspect addr");
        listener
            .set_nonblocking(true)
            .expect("introspect listener nonblocking");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = thread::Builder::new()
            .name(format!("curb-introspect-{}", state.node))
            .spawn(move || accept_loop(listener, state, flag))
            .expect("spawn introspect server");
        IntrospectServer {
            addr,
            shutdown,
            thread: Some(thread),
        }
    }

    /// The endpoint's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and waits for it to exit.
    pub fn join(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IntrospectServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, state: IntrospectState, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_one(stream, &state),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Serves exactly one command on `stream`, then closes it. Failures
/// drop the connection — the endpoint is diagnostic, never load-bearing.
fn serve_one(stream: TcpStream, state: &IntrospectState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut stream = stream;
    let answer = respond(line.trim(), state);
    let _ = stream.write_all(answer.as_bytes());
    let _ = stream.flush();
}

fn respond(command: &str, state: &IntrospectState) -> String {
    match command {
        "health" => {
            let mut out = String::new();
            out.push_str(&format!(
                "{{\"node\":\"{}\",\"height\":{},\"epoch\":{},\"blocks\":{},\"proposed\":{},\
                 \"wal_records\":{},\"wal_bytes\":{},\"wal_fsyncs\":{},\"restored\":{}}}\n",
                state.node,
                state.probe.height.load(Ordering::Relaxed),
                state.probe.epoch.load(Ordering::Relaxed),
                state.probe.blocks.load(Ordering::Relaxed),
                state.probe.proposed.load(Ordering::Relaxed),
                state.probe.wal_records.load(Ordering::Relaxed),
                state.probe.wal_bytes.load(Ordering::Relaxed),
                state.probe.wal_fsyncs.load(Ordering::Relaxed),
                state.probe.restored.load(Ordering::Relaxed),
            ));
            out
        }
        "metrics" => {
            // Splice the node name into the registry's flat object so
            // one scrape line is self-identifying.
            let body = state.registry.to_json();
            let rest = body.strip_prefix('{').unwrap_or(&body);
            let sep = if rest.starts_with('}') { "" } else { "," };
            format!("{{\"node\":\"{}\"{sep}{rest}\n", state.node)
        }
        "flight" => match flight_recorder() {
            Some(rec) => rec.to_jsonl(),
            None => String::new(),
        },
        other => format!("{{\"error\":\"unknown command {:?}\"}}\n", other),
    }
}

/// Sends one `command` to the endpoint at `addr` and returns the full
/// response.
///
/// # Errors
///
/// Propagates connect/read/write failures.
pub fn query(addr: SocketAddr, command: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(command.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_telemetry::json::{parse_flat_object, JsonValue};

    fn test_state() -> IntrospectState {
        let registry = Registry::new();
        registry.counter("runner.commits").add(7);
        registry.gauge("net.queue_depth").add(3);
        let probe = Arc::new(NodeProbe::default());
        probe.height.store(12, Ordering::Relaxed);
        probe.epoch.store(2, Ordering::Relaxed);
        probe.wal_records.store(12, Ordering::Relaxed);
        probe.wal_fsyncs.store(3, Ordering::Relaxed);
        IntrospectState {
            node: "ctrl0".to_string(),
            registry,
            probe,
        }
    }

    #[test]
    fn health_is_flat_json() {
        let state = test_state();
        let line = respond("health", &state);
        let obj = parse_flat_object(line.trim()).expect("flat json");
        assert_eq!(
            obj.get("node"),
            Some(&JsonValue::String("ctrl0".to_string()))
        );
        assert_eq!(obj.get("height"), Some(&JsonValue::Number(12.0)));
        assert_eq!(obj.get("epoch"), Some(&JsonValue::Number(2.0)));
        assert_eq!(obj.get("wal_records"), Some(&JsonValue::Number(12.0)));
        assert_eq!(obj.get("wal_fsyncs"), Some(&JsonValue::Number(3.0)));
        assert_eq!(obj.get("restored"), Some(&JsonValue::Number(0.0)));
    }

    #[test]
    fn metrics_carry_the_node_name_and_registry() {
        let state = test_state();
        let line = respond("metrics", &state);
        let obj = parse_flat_object(line.trim()).expect("flat json");
        assert_eq!(
            obj.get("node"),
            Some(&JsonValue::String("ctrl0".to_string()))
        );
        assert_eq!(obj.get("runner.commits"), Some(&JsonValue::Number(7.0)));
        assert_eq!(obj.get("net.queue_depth"), Some(&JsonValue::Number(3.0)));
    }

    #[test]
    fn metrics_with_empty_registry_still_parse() {
        let state = IntrospectState {
            node: "ctrl9".to_string(),
            registry: Registry::new(),
            probe: Arc::new(NodeProbe::default()),
        };
        let line = respond("metrics", &state);
        let obj = parse_flat_object(line.trim()).expect("flat json");
        assert_eq!(
            obj.get("node"),
            Some(&JsonValue::String("ctrl9".to_string()))
        );
    }

    #[test]
    fn unknown_commands_answer_with_an_error() {
        let state = test_state();
        let line = respond("bogus", &state);
        assert!(line.contains("unknown command"));
    }

    #[test]
    fn end_to_end_over_tcp() {
        let server = IntrospectServer::spawn(test_state());
        let health = query(server.addr(), "health").expect("query health");
        assert!(health.contains("\"height\":12"));
        let metrics = query(server.addr(), "metrics").expect("query metrics");
        assert!(metrics.contains("runner.commits"));
        server.join();
    }
}

//! A controller node: one OS-level process image of the Curb control
//! plane, speaking real TCP in every direction.
//!
//! Each node hosts, over **one** shared [`MuxTransport`]:
//!
//! * one intra-group PBFT instance ([`NetRunner`] + `Replica`) per
//!   controller group the node belongs to (a controller can serve
//!   several groups under the CAP assignment),
//! * one final-committee PBFT instance when the node sits on the final
//!   committee,
//! * the app lane for east-west [`ClusterMsg`] traffic (`AGREE`
//!   hand-offs and block announcements).
//!
//! Southbound, the node accepts s-agent connections on a second
//! listener and answers committed requests with [`SbMsg::Reply`].
//!
//! # Round workflow (paper Steps 1–4)
//!
//! 1. An s-agent broadcasts a request to every controller of its
//!    group; the group leader computes the configuration (flow rules
//!    via the shared routing table, reassignments via the CAP solver)
//!    and proposes a transaction list on the group's lane.
//! 2. The group commits the list (intra-group PBFT).
//! 3. The group leader hands the committed list to the final-committee
//!    leader, which cuts a block and proposes it on the final lane.
//! 4. The committee commits and appends the block; every committee
//!    member announces it; all assigned controllers REPLY to the
//!    issuing s-agent, which accepts on `f + 1` identical configs.
//!
//! A committed `NewAssignment` rotates the epoch **live**: new lanes
//! (epoch-scoped ids) and runners spin up immediately, while the old
//! epoch's runners keep draining in-flight rounds until a grace
//! deadline, then shut down — late frames for retired lanes are fenced
//! by the transport's routing table.

use crate::payload::CtrlPayload;
use crate::persist::{ChainStore, PersistConfig};
use crate::wire::{ClusterMsg, SbMsg, ANNOUNCE_SEQ_BIT};
use curb_assign::{solve, Assignment};
use curb_chain::Block;
use curb_consensus::{Batch, Replica};
use curb_core::{BlockPayload, FlowRuleSpec};
use curb_core::{
    ConfigData, Epoch, GroupId, ProtoTx, ReqKind, RequestKey, RequestRecord, Shared, SwitchId,
    TxListPayload,
};
use curb_net::{Lane, MuxTransport, NetRunner, NodeId, RunnerConfig, RunnerHandle, SharedDecoder};
use curb_telemetry::{
    now_nanos, record_event, record_span, record_span_ctx, EventKind, Registry, TraceCtx,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Lane-id stride between epochs: intra-group lanes of epoch `e` are
/// `e * LANE_STRIDE + group`, the final-committee lane is
/// `e * LANE_STRIDE + LANE_STRIDE - 1`. Epoch-scoped ids mean a
/// retired epoch's frames can never reach a live instance.
pub const LANE_STRIDE: u64 = 1 << 16;

/// The consensus lane id of group `group` in epoch `epoch`.
pub fn intra_lane(epoch: u64, group: usize) -> u64 {
    debug_assert!((group as u64) < LANE_STRIDE - 1);
    epoch * LANE_STRIDE + group as u64
}

/// The final-committee lane id of epoch `epoch`.
pub fn final_lane(epoch: u64) -> u64 {
    epoch * LANE_STRIDE + (LANE_STRIDE - 1)
}

/// Fault-injection behaviour of a cluster controller node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Byzantine: participates in consensus but sends **corrupted**
    /// REPLY configurations to s-agents. Detected by the agents'
    /// `f + 1` reply matching and excluded by live RE-ASS.
    Lying,
    /// Byzantine: never replies to s-agents (reply-silent). Detected
    /// by the agents' request-timeout audit.
    Silent,
}

/// Tuning knobs for a [`ControllerNode`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Per-lane consensus runner configuration.
    pub runner: RunnerConfig,
    /// Fault-injection behaviour.
    pub behavior: NodeBehavior,
    /// How long a retired epoch's runners keep draining in-flight
    /// rounds before shutting down.
    pub drain: Duration,
    /// Idle main-loop sleep.
    pub poll: Duration,
    /// Maximum southbound frame size.
    pub max_frame: usize,
    /// Metrics registry this node's consensus runners publish into.
    /// Cloning a `NodeConfig` *shares* the registry (it is an `Arc`
    /// handle) — hand each node its own for per-node introspection.
    pub registry: Registry,
    /// Durable chain storage. `None` (the default) keeps the chain
    /// purely in memory; `Some` WAL-logs every appended block and
    /// restores the committed prefix on restart (see
    /// [`crate::persist::ChainStore`]).
    pub persist: Option<PersistConfig>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            runner: RunnerConfig::default(),
            behavior: NodeBehavior::Honest,
            drain: Duration::from_secs(2),
            poll: Duration::from_millis(1),
            max_frame: 1 << 20,
            registry: Registry::new(),
            persist: None,
        }
    }
}

/// Live counters a test or benchmark can poll without locking the
/// node.
#[derive(Debug, Default)]
pub struct NodeProbe {
    /// Chain height (genesis = 0).
    pub height: AtomicU64,
    /// Current epoch number (initial assignment = 0).
    pub epoch: AtomicU64,
    /// Blocks this node appended.
    pub blocks: AtomicU64,
    /// Requests this node proposed as a group leader.
    pub proposed: AtomicU64,
    /// WAL records written (0 when persistence is off).
    pub wal_records: AtomicU64,
    /// WAL bytes written, framing included (0 when persistence is off).
    pub wal_bytes: AtomicU64,
    /// WAL fsync calls issued (0 when persistence is off).
    pub wal_fsyncs: AtomicU64,
    /// Blocks replayed from disk (snapshot + WAL) at boot.
    pub restored: AtomicU64,
}

/// Control surface for a spawned [`ControllerNode`].
pub struct NodeHandle {
    /// The controller id.
    pub id: usize,
    /// Live counters.
    pub probe: Arc<NodeProbe>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// Signals shutdown and waits for the node thread to exit.
    pub fn join(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One epoch's consensus instances on this node.
struct EpochRuntime {
    no: u64,
    epoch: Arc<Epoch>,
    /// `(group id, runner)` for every group this node belongs to.
    intra: Vec<(GroupId, RunnerHandle<CtrlPayload>)>,
    /// The final-committee runner, when this node is on the committee.
    finalr: Option<RunnerHandle<CtrlPayload>>,
}

impl EpochRuntime {
    fn join(self) {
        for (_, r) in self.intra {
            r.join();
        }
        if let Some(r) = self.finalr {
            r.join();
        }
    }
}

/// Southbound events delivered from per-connection reader threads.
enum SbEvent {
    Request {
        switch: usize,
        record: RequestRecord,
        ctx: TraceCtx,
    },
}

/// A proposed block's tracing state on the final leader: hash, propose
/// time, and the traced rounds the block carries.
type FinalSpan = ([u8; 32], u64, Vec<(RequestKey, TraceCtx)>);

/// The node state machine; owned by the node's main thread.
pub struct ControllerNode {
    id: usize,
    shared: Arc<Shared>,
    cfg: NodeConfig,
    mux: MuxTransport<Batch<CtrlPayload>>,
    chain: ChainStore,
    active: EpochRuntime,
    draining: Vec<(Instant, EpochRuntime)>,
    removed: Vec<bool>,
    /// Request keys already proposed (as leader) — at-most-once intake.
    seen: HashSet<RequestKey>,
    /// Group-leader spans: (propose time, minted context) per key.
    intra_start: HashMap<RequestKey, (u64, TraceCtx)>,
    /// Trace contexts of rounds this node serves, kept so the eventual
    /// REPLY can be stamped with the round's correlation key.
    round_ctxs: HashMap<RequestKey, TraceCtx>,
    /// Final-leader queue of intra-committed transactions.
    pending_txs: Vec<ProtoTx>,
    pending_keys: HashSet<RequestKey>,
    /// Trace contexts of queued transactions, by key.
    pending_ctxs: HashMap<RequestKey, TraceCtx>,
    block_in_flight: bool,
    /// Final-leader span: (proposed block hash, propose time, the
    /// traced rounds the block carries).
    final_start: Option<FinalSpan>,
    /// Block announcements from committee members, keyed by hash.
    votes: BTreeMap<[u8; 32], (Block, BTreeSet<NodeId>)>,
    /// Southbound reply sockets by switch id, tagged with the
    /// registration token of the connection that installed them (see
    /// `southbound_reader`'s exit path).
    sb_conns: Arc<Mutex<HashMap<usize, (u64, TcpStream)>>>,
    sb_rx: Receiver<SbEvent>,
    probe: Arc<NodeProbe>,
    shutdown: Arc<AtomicBool>,
}

impl ControllerNode {
    /// Spawns controller `id` on its own thread.
    ///
    /// `mux` must be bound to this node's slot in the cluster address
    /// list; `southbound` is the s-agent-facing listener. `epoch` is
    /// the Step-0 assignment every node starts from (epoch 0) and also
    /// determines the genesis block, so all nodes boot with identical
    /// chains.
    ///
    /// # Panics
    ///
    /// Panics if the southbound listener cannot be configured or the
    /// node thread cannot be spawned.
    pub fn spawn(
        id: usize,
        shared: Arc<Shared>,
        epoch: Arc<Epoch>,
        mux: MuxTransport<Batch<CtrlPayload>>,
        southbound: TcpListener,
        cfg: NodeConfig,
    ) -> NodeHandle {
        let shutdown = Arc::new(AtomicBool::new(false));
        let probe = Arc::new(NodeProbe::default());
        let sb_conns: Arc<Mutex<HashMap<usize, (u64, TcpStream)>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let (sb_tx, sb_rx) = channel();

        southbound
            .set_nonblocking(true)
            .expect("southbound listener nonblocking");
        {
            let conns = Arc::clone(&sb_conns);
            let flag = Arc::clone(&shutdown);
            let poll = cfg.poll.max(Duration::from_millis(1));
            let max_frame = cfg.max_frame;
            thread::Builder::new()
                .name(format!("curb-node-{id}-southbound"))
                .spawn(move || {
                    southbound_accept_loop(southbound, conns, sb_tx, flag, poll, max_frame)
                })
                .expect("spawn southbound acceptor");
        }

        let genesis_record = ConfigData::NewAssignment {
            groups: (0..shared.plan.n_switches)
                .map(|i| epoch.assignment.group(i).iter().copied().collect())
                .collect(),
        }
        .encode();
        let chain = match &cfg.persist {
            Some(persist) => ChainStore::open(persist.clone(), &genesis_record)
                .expect("open durable chain store"),
            None => ChainStore::ephemeral(&genesis_record),
        };
        // A durable store may restore committed blocks from disk;
        // surface the restored prefix to pollers immediately.
        probe.height.store(chain.height(), Ordering::Relaxed);
        probe.restored.store(
            chain.recovery().snapshot_height + chain.recovery().wal_replayed,
            Ordering::Relaxed,
        );

        let flag = Arc::clone(&shutdown);
        let probe2 = Arc::clone(&probe);
        let thread = thread::Builder::new()
            .name(format!("curb-node-{id}"))
            .spawn(move || {
                // Name this thread's spans after the node: per-node
                // trace files are split on this label.
                curb_telemetry::set_thread_node(format!("ctrl{id}"));
                let removed = epoch.removed.clone();
                let active =
                    build_runtime(id, 0, Arc::clone(&epoch), &mux, &cfg.runner, &cfg.registry);
                let mut node = ControllerNode {
                    id,
                    shared,
                    cfg,
                    mux,
                    chain,
                    active,
                    draining: Vec::new(),
                    removed,
                    seen: HashSet::new(),
                    intra_start: HashMap::new(),
                    round_ctxs: HashMap::new(),
                    pending_txs: Vec::new(),
                    pending_keys: HashSet::new(),
                    pending_ctxs: HashMap::new(),
                    block_in_flight: false,
                    final_start: None,
                    votes: BTreeMap::new(),
                    sb_conns,
                    sb_rx,
                    probe: probe2,
                    shutdown: flag,
                };
                node.run();
            })
            .expect("spawn controller node");

        NodeHandle {
            id,
            probe,
            shutdown,
            thread: Some(thread),
        }
    }

    fn run(&mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            let mut progress = false;
            while let Ok(SbEvent::Request {
                switch,
                record,
                ctx,
            }) = self.sb_rx.try_recv()
            {
                self.on_request(SwitchId(switch), record, ctx);
                progress = true;
            }
            while let Some(ev) = self.mux.recv_app(Duration::ZERO) {
                if let Some(msg) = ClusterMsg::decode(&ev.bytes) {
                    self.on_cluster_msg(ev.from, msg);
                    progress = true;
                }
            }
            progress |= self.pump_decisions();
            self.retire_drained();
            self.try_propose_block();
            if !progress {
                thread::sleep(self.cfg.poll);
            }
        }
        let epoch = Arc::clone(&self.active.epoch);
        let active = std::mem::replace(
            &mut self.active,
            EpochRuntime {
                no: u64::MAX,
                epoch,
                intra: Vec::new(),
                finalr: None,
            },
        );
        active.join();
        for (_, rt) in self.draining.drain(..) {
            rt.join();
        }
        self.mux.shutdown();
        // This thread recorded cluster.intra/cluster.final spans into
        // the thread-local buffer; hand them to the sink before exit.
        curb_telemetry::flush_thread();
    }

    /// Step 1→2: a request arrived southbound; the group leader
    /// computes the configuration and proposes it on the group's lane.
    fn on_request(&mut self, switch: SwitchId, record: RequestRecord, ctx: TraceCtx) {
        if switch.0 >= self.shared.plan.n_switches || record.key.switch != switch {
            return;
        }
        let epoch = Arc::clone(&self.active.epoch);
        if !epoch.ctrl_list(switch).contains(&self.id) {
            // The issuing agent is homed on a stale epoch's controller
            // list (it missed the rotation's announcement — they are
            // delivered once, best-effort). Silence here would strand
            // it forever, so answer with the *current* assignment
            // under the announce key: once `f + 1` stale-list members
            // send the identical hint, the agent's usual announcement
            // matcher re-homes it.
            self.rehome_hint(switch);
            return;
        }
        if ctx.is_some() {
            // Every serving member remembers the round's context: the
            // REPLY it sends after the final commit echoes it back.
            self.round_ctxs.insert(record.key, ctx);
        }
        let gid = epoch.group_of(switch);
        let leader = epoch.groups[gid.0].leader();
        if leader != self.id {
            // PBFT's client-request relay: a follower cannot propose,
            // but dropping the request would wedge an agent whose
            // stale controller list still overlaps the current group
            // yet misses its leader. Hand it to the controller that
            // can propose it; `seen` caps the relay at once per key.
            if self.seen.insert(record.key) {
                self.mux
                    .send_app(leader, &ClusterMsg::Forward { record, ctx }.encode());
            }
            return;
        }
        if !self.seen.insert(record.key) {
            return;
        }
        let Some(config) = self.compute_config(&record) else {
            return;
        };
        let tx = ProtoTx {
            record,
            handled_by: self.id,
            config,
        };
        let key = tx.record.key;
        if let Some((_, runner)) = self.active.intra.iter().find(|(g, _)| *g == gid) {
            self.intra_start.insert(key, (now_nanos(), ctx));
            let payload = CtrlPayload::Txs {
                txs: TxListPayload(vec![tx]),
                // Hop 1: the round entered the intra-group lane.
                ctxs: vec![ctx.next_hop()],
            };
            if runner.propose(payload) {
                self.probe.proposed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// `ComputeConfig` (Algorithm 2): routing-table flow rules for
    /// PKT-IN, a CAP re-solve with accused controllers excluded for
    /// RE-ASS.
    fn compute_config(&self, record: &RequestRecord) -> Option<ConfigData> {
        let epoch = &self.active.epoch;
        match &record.kind {
            ReqKind::PktIn { dst_host } => {
                let src = record.key.switch;
                let dst = self.shared.dst_switch(*dst_host);
                let out_port = self.shared.next_hop_port[src.0][dst.0];
                Some(ConfigData::FlowRules(vec![FlowRuleSpec {
                    priority: 10,
                    dst_host: *dst_host,
                    out_port,
                }]))
            }
            ReqKind::ReAss { accused } => {
                let accused: Vec<usize> = accused
                    .iter()
                    .copied()
                    .filter(|&c| c < self.shared.plan.n_controllers)
                    .collect();
                let accused_set: BTreeSet<usize> = accused.iter().copied().collect();
                let leader_pins: Vec<Option<usize>> = (0..self.shared.plan.n_switches)
                    .map(|s| {
                        let leader = epoch.groups[epoch.group_of(SwitchId(s)).0].leader();
                        (!accused_set.contains(&leader)).then_some(leader)
                    })
                    .collect();
                let (model, options) = self.shared.reassignment_problem(
                    &epoch.removed,
                    &accused,
                    &leader_pins,
                    &epoch.assignment,
                );
                let solution = solve(&model, &options).ok()?;
                Some(ConfigData::NewAssignment {
                    groups: (0..self.shared.plan.n_switches)
                        .map(|i| solution.assignment.group(i).iter().copied().collect())
                        .collect(),
                })
            }
        }
    }

    /// Polls every runner (active and draining) for decisions.
    fn pump_decisions(&mut self) -> bool {
        let mut progress = false;
        // Collect first to end the borrow of the runtimes, then act.
        let mut intra_committed: Vec<(u64, GroupId, TxListPayload, Vec<TraceCtx>)> = Vec::new();
        let mut final_committed: Vec<(u64, BlockPayload)> = Vec::new();
        {
            let runtimes =
                std::iter::once(&self.active).chain(self.draining.iter().map(|(_, rt)| rt));
            for rt in runtimes {
                for (gid, runner) in &rt.intra {
                    while let Ok(d) = runner.decisions.try_recv() {
                        if let CtrlPayload::Txs { txs, ctxs } = d.payload {
                            if !txs.0.is_empty() {
                                intra_committed.push((rt.no, *gid, txs, ctxs));
                            }
                        }
                    }
                }
                if let Some(runner) = &rt.finalr {
                    while let Ok(d) = runner.decisions.try_recv() {
                        if let CtrlPayload::Block(b) = d.payload {
                            final_committed.push((rt.no, b));
                        }
                    }
                }
            }
        }
        for (no, gid, txs, ctxs) in intra_committed {
            progress = true;
            self.on_intra_commit(no, gid, txs, ctxs);
        }
        for (no, block) in final_committed {
            progress = true;
            self.on_final_commit(no, block);
        }
        progress
    }

    /// Step 3: the group agreed on a transaction list. The group
    /// leader hands it to the final-committee leader.
    fn on_intra_commit(
        &mut self,
        epoch_no: u64,
        gid: GroupId,
        txs: TxListPayload,
        ctxs: Vec<TraceCtx>,
    ) {
        let rt_epoch = self
            .runtime_epoch(epoch_no)
            .unwrap_or_else(|| Arc::clone(&self.active.epoch));
        // Decoders enforce one context per transaction, but keep the
        // invariant locally too — a short list would desync the zip.
        let mut ctxs = ctxs;
        ctxs.resize(txs.0.len(), TraceCtx::NONE);
        let end = now_nanos();
        for (tx, ctx) in txs.0.iter().zip(&ctxs) {
            if let Some((start, _)) = self.intra_start.remove(&tx.record.key) {
                record_span_ctx(
                    "cluster.intra",
                    start,
                    end,
                    self.id as i64,
                    tx.record.key.seq as i64,
                    *ctx,
                );
            }
        }
        if rt_epoch.groups[gid.0].leader() != self.id {
            return;
        }
        // Hand off to the *current* epoch's final leader: the final
        // committee may have rotated while this round was in flight.
        let target = self.active.epoch.final_leader();
        let msg = ClusterMsg::Agree {
            epoch: self.active.no,
            group: gid.0 as u64,
            // Hop 2: the round crossed into the final-committee lane.
            ctxs: ctxs.iter().map(|c| c.next_hop()).collect(),
            txs,
        };
        if target == self.id {
            self.on_cluster_msg(self.id, msg);
        } else {
            self.mux.send_app(target, &msg.encode());
        }
    }

    fn on_cluster_msg(&mut self, from: NodeId, msg: ClusterMsg) {
        match msg {
            ClusterMsg::Agree { ctxs, txs, .. } => {
                if self.active.epoch.final_leader() != self.id {
                    return;
                }
                for (i, tx) in txs.0.into_iter().enumerate() {
                    if self.pending_keys.insert(tx.record.key) {
                        if let Some(ctx) = ctxs.get(i).copied().filter(|c| c.is_some()) {
                            self.pending_ctxs.insert(tx.record.key, ctx);
                        }
                        self.pending_txs.push(tx);
                    }
                }
                self.try_propose_block();
            }
            ClusterMsg::FinalBlock { epoch, block } => {
                self.on_block_announcement(from, epoch, block);
            }
            ClusterMsg::Forward { record, ctx } => {
                // A follower relayed a southbound request it could not
                // propose; treat it exactly like a direct arrival. If
                // the epoch rotated again in flight this re-routes (or
                // re-homes) under the now-active assignment — the
                // per-key dedup in `on_request` stops relay loops.
                self.on_request(record.key.switch, record, ctx);
            }
        }
    }

    /// Step 4a: the final-committee leader cuts the next block from
    /// the queued transaction lists — one block in flight at a time so
    /// blocks always extend the tip they were proposed against.
    fn try_propose_block(&mut self) {
        if self.block_in_flight
            || self.pending_txs.is_empty()
            || self.active.epoch.final_leader() != self.id
        {
            return;
        }
        let Some(runner) = &self.active.finalr else {
            return;
        };
        let pending: Vec<ProtoTx> = self.pending_txs.drain(..).collect();
        let mut rounds = Vec::with_capacity(pending.len());
        let mut txs = Vec::with_capacity(pending.len());
        for t in pending {
            let key = t.record.key;
            let ctx = self.pending_ctxs.remove(&key).unwrap_or(TraceCtx::NONE);
            if ctx.is_some() {
                rounds.push((key, ctx));
            }
            txs.push(t.to_chain_tx());
        }
        let block = Block::next(self.chain.tip(), txs, now_nanos());
        self.final_start = Some((block.hash().0, now_nanos(), rounds));
        self.block_in_flight = true;
        runner.propose(CtrlPayload::Block(BlockPayload(Some(block))));
    }

    /// Step 4b: the final committee committed a block proposal.
    fn on_final_commit(&mut self, epoch_no: u64, payload: BlockPayload) {
        let is_leader_epoch =
            epoch_no == self.active.no && self.active.epoch.final_leader() == self.id;
        if is_leader_epoch {
            // Leader or not, a decision un-blocks the pipeline: the
            // next queued block can only build on the new tip.
            self.block_in_flight = false;
        }
        let Some(block) = payload.0 else {
            self.try_propose_block();
            return;
        };
        if self.append_block(block.clone()) {
            // Announce to nodes outside the committee (and re-assure
            // those inside): f + 1 matching announcements let a
            // non-member adopt the block without trusting any single
            // controller.
            self.mux.broadcast_app(
                &ClusterMsg::FinalBlock {
                    epoch: epoch_no,
                    block,
                }
                .encode(),
            );
        }
        self.try_propose_block();
    }

    fn on_block_announcement(&mut self, from: NodeId, epoch_no: u64, block: Block) {
        let Some(epoch) = self.runtime_epoch(epoch_no) else {
            return;
        };
        self.on_block_vote_with(&epoch.final_com, from, block);
    }

    fn on_block_vote_with(&mut self, committee: &[usize], from: NodeId, block: Block) {
        if !committee.contains(&from) {
            return;
        }
        if block.header.height <= self.chain.height() {
            return;
        }
        let hash = block.hash().0;
        let entry = self
            .votes
            .entry(hash)
            .or_insert_with(|| (block, BTreeSet::new()));
        entry.1.insert(from);
        let quorum = self.shared.config.f + 1;
        if entry.1.len() >= quorum {
            let block = entry.0.clone();
            if self.append_block(block) {
                let height = self.chain.height();
                self.votes.retain(|_, (b, _)| b.header.height > height);
            }
        }
    }

    /// Appends `block` if it extends the local tip; on success, runs
    /// the post-commit duties (REPLY, epoch rotation).
    fn append_block(&mut self, block: Block) -> bool {
        if block.header.height != self.chain.height() + 1 {
            return false;
        }
        if self.chain.append(block.clone()).is_err() {
            return false;
        }
        self.probe
            .height
            .store(self.chain.height(), Ordering::Relaxed);
        self.probe.blocks.fetch_add(1, Ordering::Relaxed);
        let wal = self.chain.wal_stats();
        self.probe.wal_records.store(wal.records, Ordering::Relaxed);
        self.probe.wal_bytes.store(wal.bytes, Ordering::Relaxed);
        self.probe.wal_fsyncs.store(wal.fsyncs, Ordering::Relaxed);
        if let Some((hash, start, rounds)) = self.final_start.take() {
            if hash == block.hash().0 {
                let end = now_nanos();
                record_span(
                    "cluster.final",
                    start,
                    end,
                    self.id as i64,
                    block.header.height as i64,
                );
                // One tagged span per traced round the block carried,
                // so cross-node assembly can place the final-committee
                // leg on each round's critical path.
                for (key, ctx) in rounds {
                    record_span_ctx(
                        "cluster.final_round",
                        start,
                        end,
                        self.id as i64,
                        key.seq as i64,
                        ctx,
                    );
                }
            } else {
                self.final_start = Some((hash, start, rounds));
            }
        }
        self.handle_committed(&block);
        true
    }

    /// Post-commit: REPLY to the issuing s-agents and apply any
    /// committed reassignment.
    fn handle_committed(&mut self, block: &Block) {
        let mut rotation: Option<(Vec<Vec<usize>>, Vec<usize>)> = None;
        for chain_tx in &block.txs {
            let Some(tx) = ProtoTx::from_chain_tx(chain_tx) else {
                continue;
            };
            let switch = tx.record.key.switch;
            let round_ctx = self
                .round_ctxs
                .remove(&tx.record.key)
                .unwrap_or(TraceCtx::NONE);
            if switch.0 < self.shared.plan.n_switches
                && self.active.epoch.ctrl_list(switch).contains(&self.id)
                && self.cfg.behavior != NodeBehavior::Silent
            {
                let config = match self.cfg.behavior {
                    NodeBehavior::Lying => corrupt(&tx.config),
                    _ => tx.config.clone(),
                };
                // Hop back: the stored hop-0 context, advanced once,
                // marks the REPLY leg.
                self.reply_to(switch, tx.record.key, config, round_ctx.next_hop());
            }
            self.intra_start.remove(&tx.record.key);
            self.pending_ctxs.remove(&tx.record.key);
            if let ConfigData::NewAssignment { groups } = &tx.config {
                let accused = match &tx.record.kind {
                    ReqKind::ReAss { accused } => accused.clone(),
                    _ => Vec::new(),
                };
                rotation = Some((groups.clone(), accused));
            }
        }
        if let Some((groups, accused)) = rotation {
            self.maybe_rotate(groups, accused);
        }
    }

    fn reply_to(&self, switch: SwitchId, key: RequestKey, config: ConfigData, ctx: TraceCtx) {
        let msg = SbMsg::Reply {
            controller: self.id as u64,
            key,
            config,
            ctx,
        };
        let mut conns = self.sb_conns.lock().expect("southbound registry poisoned");
        if let Some((_, stream)) = conns.get_mut(&switch.0) {
            if write_sb_frame(stream, &msg).is_err() {
                conns.remove(&switch.0);
            }
        }
    }

    /// Live RE-ASS: a committed `NewAssignment` rotates the epoch.
    /// New lanes and runners start immediately; the old epoch's
    /// runners drain in-flight rounds until the grace deadline.
    fn maybe_rotate(&mut self, groups: Vec<Vec<usize>>, accused: Vec<usize>) {
        let mut removed_changed = false;
        for c in accused {
            if c < self.removed.len() && !self.removed[c] {
                self.removed[c] = true;
                removed_changed = true;
            }
        }
        let assignment = Assignment::from_groups(groups, self.shared.plan.n_controllers);
        if !removed_changed && assignment == self.active.epoch.assignment {
            return;
        }
        let epoch = Arc::new(Epoch::build(
            assignment,
            &self.shared.keys,
            self.shared.config.f,
            self.removed.clone(),
        ));
        let no = self.active.no + 1;
        let fresh = build_runtime(
            self.id,
            no,
            Arc::clone(&epoch),
            &self.mux,
            &self.cfg.runner,
            &self.cfg.registry,
        );
        let old = std::mem::replace(&mut self.active, fresh);
        let was_final_leader = old.epoch.final_leader() == self.id;
        self.announce_assignment(&old.epoch, &epoch, no);
        self.draining.push((Instant::now() + self.cfg.drain, old));
        self.block_in_flight = false;
        self.final_start = None;
        self.probe.epoch.store(no, Ordering::Relaxed);
        record_event(
            EventKind::EpochRotation,
            format!("controller {} rotated to epoch {no}", self.id),
        );
        // Carry queued transactions across the boundary: if the final
        // leadership moved, re-route them to the new leader.
        if was_final_leader && !self.pending_txs.is_empty() {
            let target = epoch.final_leader();
            if target != self.id {
                let txs = TxListPayload(self.pending_txs.drain(..).collect());
                let ctxs = txs
                    .0
                    .iter()
                    .map(|t| {
                        self.pending_ctxs
                            .remove(&t.record.key)
                            .unwrap_or(TraceCtx::NONE)
                    })
                    .collect();
                self.pending_keys.clear();
                self.pending_ctxs.clear();
                self.mux.send_app(
                    target,
                    &ClusterMsg::Agree {
                        epoch: no,
                        group: u64::MAX,
                        ctxs,
                        txs,
                    }
                    .encode(),
                );
            }
        }
        self.try_propose_block();
    }

    /// Pushes a just-committed assignment to every switch this node
    /// serves under the outgoing or the incoming epoch. A direct REPLY
    /// only reaches the accusing agent (it alone holds a matching
    /// pending request); every other switch learns the rotation from
    /// these announcements, keyed `ANNOUNCE_SEQ_BIT | epoch` so all
    /// controllers' copies match at the agent under the usual `f + 1`
    /// rule.
    fn announce_assignment(&self, old: &Epoch, new: &Epoch, no: u64) {
        if self.cfg.behavior == NodeBehavior::Silent {
            return;
        }
        let config = ConfigData::NewAssignment {
            groups: (0..self.shared.plan.n_switches)
                .map(|s| new.ctrl_list(SwitchId(s)).to_vec())
                .collect(),
        };
        for s in 0..self.shared.plan.n_switches {
            let switch = SwitchId(s);
            if !old.ctrl_list(switch).contains(&self.id)
                && !new.ctrl_list(switch).contains(&self.id)
            {
                continue;
            }
            let announced = match self.cfg.behavior {
                NodeBehavior::Lying => corrupt(&config),
                _ => config.clone(),
            };
            let key = RequestKey {
                switch,
                seq: ANNOUNCE_SEQ_BIT | no,
            };
            self.reply_to(switch, key, announced, TraceCtx::NONE);
        }
    }

    /// Answers a request from an agent this node does not currently
    /// serve: the sender is still homed on a stale epoch's controller
    /// list. Push the active assignment to it under the announce key —
    /// the same `f + 1` identical-config rule that gates a normal
    /// announcement gates the re-home, so a lone (or lying) hinter
    /// cannot steer the agent.
    fn rehome_hint(&self, switch: SwitchId) {
        if self.cfg.behavior == NodeBehavior::Silent {
            return;
        }
        let config = ConfigData::NewAssignment {
            groups: (0..self.shared.plan.n_switches)
                .map(|s| self.active.epoch.ctrl_list(SwitchId(s)).to_vec())
                .collect(),
        };
        let announced = match self.cfg.behavior {
            NodeBehavior::Lying => corrupt(&config),
            _ => config,
        };
        let key = RequestKey {
            switch,
            seq: ANNOUNCE_SEQ_BIT | self.active.no,
        };
        self.reply_to(switch, key, announced, TraceCtx::NONE);
    }

    fn runtime_epoch(&self, no: u64) -> Option<Arc<Epoch>> {
        if no == self.active.no {
            return Some(Arc::clone(&self.active.epoch));
        }
        self.draining
            .iter()
            .find(|(_, rt)| rt.no == no)
            .map(|(_, rt)| Arc::clone(&rt.epoch))
    }

    fn retire_drained(&mut self) {
        let now = Instant::now();
        let mut keep = Vec::new();
        for (deadline, rt) in self.draining.drain(..) {
            if now >= deadline {
                rt.join();
            } else {
                keep.push((deadline, rt));
            }
        }
        self.draining = keep;
    }
}

/// A byzantine node's reply corruption: plausible-looking but wrong
/// flow rules, whatever the committed configuration was.
fn corrupt(_config: &ConfigData) -> ConfigData {
    ConfigData::FlowRules(vec![FlowRuleSpec {
        priority: 1,
        dst_host: 0xBAD,
        out_port: 0xBAD,
    }])
}

/// Builds the consensus instances node `id` participates in for
/// `epoch` (numbered `no`): one lane per owned group, plus the final
/// lane for committee members. Lane member lists come from the epoch,
/// so every node derives identical lane rosters independently.
fn build_runtime(
    id: usize,
    no: u64,
    epoch: Arc<Epoch>,
    mux: &MuxTransport<Batch<CtrlPayload>>,
    runner_cfg: &RunnerConfig,
    registry: &Registry,
) -> EpochRuntime {
    let mut runner_cfg = runner_cfg.clone();
    if runner_cfg.node_label.is_none() {
        // Consensus spans recorded on runner threads carry the node's
        // label, landing in this node's file of a distributed trace.
        runner_cfg.node_label = Some(format!("ctrl{id}"));
    }
    let mut intra = Vec::new();
    for (gid, group) in epoch.groups.iter().enumerate() {
        let Some(replica_index) = group.replica_index(id) else {
            continue;
        };
        let lane: Lane<Batch<CtrlPayload>> = mux.lane(intra_lane(no, gid), group.members.clone());
        let replica = Replica::new(replica_index, group.members.len());
        intra.push((
            GroupId(gid),
            NetRunner::spawn_with_registry(replica, lane, runner_cfg.clone(), registry.clone()),
        ));
    }
    let finalr = epoch.final_replica_index(id).map(|replica_index| {
        let lane: Lane<Batch<CtrlPayload>> = mux.lane(final_lane(no), epoch.final_com.clone());
        let replica = Replica::new(replica_index, epoch.final_com.len());
        NetRunner::spawn_with_registry(replica, lane, runner_cfg.clone(), registry.clone())
    });
    EpochRuntime {
        no,
        epoch,
        intra,
        finalr,
    }
}

/// Writes one southbound frame (u32 length prefix + body).
/// Monotonic registration tokens for southbound connections, so a
/// reader thread that exits late can tell whether the registry entry
/// for its switch is still its own (see `southbound_reader`).
static SB_REG_TOKEN: AtomicU64 = AtomicU64::new(0);

pub(crate) fn write_sb_frame(stream: &mut TcpStream, msg: &SbMsg) -> std::io::Result<()> {
    let body = msg.encode();
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    stream.write_all(&frame)
}

fn southbound_accept_loop(
    listener: TcpListener,
    conns: Arc<Mutex<HashMap<usize, (u64, TcpStream)>>>,
    events: Sender<SbEvent>,
    shutdown: Arc<AtomicBool>,
    poll: Duration,
    max_frame: usize,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conns = Arc::clone(&conns);
                let events = events.clone();
                let flag = Arc::clone(&shutdown);
                let _ = thread::Builder::new()
                    .name("curb-node-sb-reader".to_string())
                    .spawn(move || southbound_reader(stream, conns, events, flag, max_frame));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(poll),
            Err(_) => break,
        }
    }
}

/// Per-connection southbound reader: a `Hello` registers the writer
/// half for replies, then every `Request` is forwarded to the node's
/// main loop. Anything malformed drops the connection.
fn southbound_reader(
    stream: TcpStream,
    conns: Arc<Mutex<HashMap<usize, (u64, TcpStream)>>>,
    events: Sender<SbEvent>,
    shutdown: Arc<AtomicBool>,
    max_frame: usize,
) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = reader.set_read_timeout(Some(Duration::from_millis(50)));
    // Zero-copy decode: reads land straight in the decoder's shared
    // block, and each frame is decoded from its in-place view. The
    // message scratch vec is reused across reads.
    let mut decoder = SharedDecoder::new(max_frame);
    let mut msgs: Vec<Option<SbMsg>> = Vec::new();
    let mut registered: Option<(usize, u64)> = None;
    'outer: while !shutdown.load(Ordering::SeqCst) {
        let n = match reader.read(decoder.writable()) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        msgs.clear();
        if decoder
            .advance(n, |frame| msgs.push(SbMsg::decode(&frame)))
            .is_err()
        {
            break;
        }
        for msg in msgs.drain(..) {
            match msg {
                Some(SbMsg::Hello { switch }) if registered.is_none() => {
                    let switch = switch as usize;
                    let token = SB_REG_TOKEN.fetch_add(1, Ordering::Relaxed);
                    registered = Some((switch, token));
                    conns.lock().expect("southbound registry poisoned").insert(
                        switch,
                        (token, stream.try_clone().expect("clone sb stream")),
                    );
                }
                Some(SbMsg::Request { record, ctx }) => {
                    if let Some((switch, _)) = registered {
                        if events
                            .send(SbEvent::Request {
                                switch,
                                record,
                                ctx,
                            })
                            .is_err()
                        {
                            break 'outer;
                        }
                    }
                }
                _ => break 'outer, // protocol violation: drop the peer
            }
        }
    }
    if let Some((switch, token)) = registered {
        // Remove only the entry this connection installed: the agent
        // may already have reconnected and re-registered while this
        // reader was still parked on its dead socket, and blindly
        // removing by switch id would sever the agent's *new* reply
        // path — every future REPLY to it would vanish, wedging the
        // switch for good.
        let mut conns = conns.lock().expect("southbound registry poisoned");
        if conns.get(&switch).is_some_and(|(t, _)| *t == token) {
            conns.remove(&switch);
        }
    }
}

//! Round-level metrics, matching the quantities plotted in the paper's
//! evaluation (latency, throughput, message counts, PDL).

use core::time::Duration;

/// Measurements for one protocol round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round number (1-based).
    pub round: usize,
    /// Requests issued by switches this round (PKT-IN and RE-ASS).
    pub requests: usize,
    /// Requests that reached `f + 1` matching replies.
    pub accepted: usize,
    /// Transactions committed to the blockchain this round.
    pub committed_txs: usize,
    /// Mean request latency over accepted requests.
    pub avg_latency: Option<Duration>,
    /// Accepted requests per second of simulated time.
    pub throughput_tps: f64,
    /// Protocol messages sent this round.
    pub messages: u64,
    /// Protocol bytes sent this round.
    pub bytes: u64,
    /// Reassignment requests accepted this round.
    pub reassignments: usize,
    /// Controllers removed from the control plane so far (cumulative).
    pub removed_controllers: Vec<usize>,
    /// PDL of this round's reassignment, if one was applied.
    pub pdl: Option<f64>,
    /// Blockchain height at round end.
    pub chain_height: u64,
    /// Simulated wall time the round spanned.
    pub duration: Duration,
}

/// Measurements for a sequence of rounds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Per-round measurements.
    pub rounds: Vec<RoundReport>,
}

impl Report {
    /// Mean of per-round average latencies (rounds with no accepted
    /// requests are skipped).
    pub fn mean_latency(&self) -> Option<Duration> {
        let latencies: Vec<Duration> = self.rounds.iter().filter_map(|r| r.avg_latency).collect();
        if latencies.is_empty() {
            return None;
        }
        Some(latencies.iter().sum::<Duration>() / latencies.len() as u32)
    }

    /// Mean per-round throughput.
    pub fn mean_tps(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.throughput_tps).sum::<f64>() / self.rounds.len() as f64
    }

    /// Total protocol messages across all rounds.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Mean messages per round.
    pub fn mean_messages(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.total_messages() as f64 / self.rounds.len() as f64
    }

    /// First round in which a reassignment was applied, if any.
    pub fn first_reassignment_round(&self) -> Option<usize> {
        self.rounds
            .iter()
            .find(|r| r.reassignments > 0)
            .map(|r| r.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(n: usize, latency_ms: Option<u64>, tps: f64, reass: usize) -> RoundReport {
        RoundReport {
            round: n,
            requests: 10,
            accepted: 10,
            committed_txs: 10,
            avg_latency: latency_ms.map(Duration::from_millis),
            throughput_tps: tps,
            messages: 100,
            bytes: 1000,
            reassignments: reass,
            removed_controllers: vec![],
            pdl: None,
            chain_height: n as u64,
            duration: Duration::from_secs(1),
        }
    }

    #[test]
    fn aggregates() {
        let report = Report {
            rounds: vec![
                round(1, Some(100), 50.0, 0),
                round(2, None, 0.0, 0),
                round(3, Some(300), 70.0, 1),
            ],
        };
        assert_eq!(report.mean_latency(), Some(Duration::from_millis(200)));
        assert!((report.mean_tps() - 40.0).abs() < 1e-9);
        assert_eq!(report.total_messages(), 300);
        assert_eq!(report.mean_messages(), 100.0);
        assert_eq!(report.first_reassignment_round(), Some(3));
    }

    #[test]
    fn empty_report() {
        let report = Report::default();
        assert_eq!(report.mean_latency(), None);
        assert_eq!(report.mean_tps(), 0.0);
        assert_eq!(report.first_reassignment_round(), None);
    }
}

//! Epoch state: the controller grouping derived from an assignment.
//!
//! An *epoch* is the period between two reassignments. It fixes, for
//! every switch, its controller group; for every group, its member list
//! and leader; and the final committee (Section III-C, Step 0 of the
//! paper). All of this is a deterministic function of the assignment
//! and the controllers' public keys, so every honest node derives the
//! identical epoch from the blockchain.

use crate::ids::{GroupId, SwitchId};
use curb_assign::Assignment;
use curb_crypto::PublicKey;
use std::collections::BTreeSet;

/// One controller group: a deduplicated controller set shared by one or
/// more switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Member controller indices; `members[0]` is the group leader.
    pub members: Vec<usize>,
}

impl Group {
    /// The group leader.
    pub fn leader(&self) -> usize {
        self.members[0]
    }

    /// Position of `controller` within the group (its PBFT replica
    /// index), if it is a member.
    pub fn replica_index(&self, controller: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == controller)
    }
}

/// The grouping state of one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Epoch {
    /// The underlying assignment (`A_ij`).
    pub assignment: Assignment,
    /// Deduplicated groups, ordered by group identity number (the
    /// smallest member id).
    pub groups: Vec<Group>,
    /// Which group governs each switch.
    pub group_of_switch: Vec<GroupId>,
    /// Which switches each group governs.
    pub switches_of_group: Vec<Vec<SwitchId>>,
    /// Final committee member controllers; index 0 is the committee
    /// leader (the highest ID, per the paper).
    pub final_com: Vec<usize>,
    /// Controllers removed from the network by past reassignments.
    pub removed: Vec<bool>,
}

impl Epoch {
    /// Derives the epoch from an assignment.
    ///
    /// * Groups are the distinct controller sets of the assignment,
    ///   ordered by their smallest member id (the "group identity
    ///   number").
    /// * Each group's leader is its member with the highest public-key
    ///   ID, matching the paper's final-committee leader rule.
    /// * The final committee has `3f + 1` members drawn from the first
    ///   groups in identity order, each group electing one member not
    ///   already elected (wrapping around if there are fewer groups than
    ///   seats, and capping at the number of distinct controllers).
    ///
    /// # Panics
    ///
    /// Panics if the assignment references controllers without keys.
    pub fn build(
        assignment: Assignment,
        keys: &[PublicKey],
        f: usize,
        removed: Vec<bool>,
    ) -> Epoch {
        let n_switches = assignment.n_switches();
        assert!(
            assignment
                .used_controllers()
                .iter()
                .all(|&j| j < keys.len()),
            "assignment references unknown controllers"
        );
        // Deduplicate controller sets.
        let mut sets: Vec<BTreeSet<usize>> = Vec::new();
        let mut group_of_switch = Vec::with_capacity(n_switches);
        for i in 0..n_switches {
            let set = assignment.group(i).clone();
            let gid = match sets.iter().position(|s| *s == set) {
                Some(g) => g,
                None => {
                    sets.push(set);
                    sets.len() - 1
                }
            };
            group_of_switch.push(gid);
        }
        // Order groups by identity number (smallest member).
        let mut order: Vec<usize> = (0..sets.len()).collect();
        order.sort_by_key(|&g| sets[g].iter().next().copied().unwrap_or(usize::MAX));
        let mut remap = vec![0usize; sets.len()];
        for (new_gid, &old_gid) in order.iter().enumerate() {
            remap[old_gid] = new_gid;
        }
        let group_of_switch: Vec<GroupId> = group_of_switch
            .into_iter()
            .map(|g| GroupId(remap[g]))
            .collect();
        let groups: Vec<Group> = order
            .iter()
            .map(|&old| {
                let set = &sets[old];
                let leader = set
                    .iter()
                    .copied()
                    .max_by_key(|&j| keys[j].as_scalar())
                    .expect("groups are non-empty");
                let mut members = vec![leader];
                members.extend(set.iter().copied().filter(|&j| j != leader));
                Group { members }
            })
            .collect();
        let mut switches_of_group: Vec<Vec<SwitchId>> = vec![Vec::new(); groups.len()];
        for (i, gid) in group_of_switch.iter().enumerate() {
            switches_of_group[gid.0].push(SwitchId(i));
        }
        // Final committee election.
        let committee_size = 3 * f + 1;
        let mut final_com: Vec<usize> = Vec::new();
        let mut elected: BTreeSet<usize> = BTreeSet::new();
        let distinct: BTreeSet<usize> = groups
            .iter()
            .flat_map(|g| g.members.iter().copied())
            .collect();
        let target = committee_size.min(distinct.len());
        'outer: loop {
            let before = final_com.len();
            for group in &groups {
                if final_com.len() >= target {
                    break 'outer;
                }
                if let Some(&m) = group.members.iter().find(|&&m| !elected.contains(&m)) {
                    elected.insert(m);
                    final_com.push(m);
                }
            }
            if final_com.len() == before {
                break; // no progress: every member already elected
            }
        }
        // Committee leader: highest ID first.
        final_com.sort_by_key(|&j| std::cmp::Reverse(keys[j].as_scalar()));
        Epoch {
            assignment,
            groups,
            group_of_switch,
            switches_of_group,
            final_com,
            removed,
        }
    }

    /// The group governing `switch`.
    pub fn group_of(&self, switch: SwitchId) -> GroupId {
        self.group_of_switch[switch.0]
    }

    /// The controller list of `switch` (its `ctrList_s`).
    pub fn ctrl_list(&self, switch: SwitchId) -> &[usize] {
        &self.groups[self.group_of(switch).0].members
    }

    /// Group ids that `controller` belongs to.
    pub fn groups_of_controller(&self, controller: usize) -> Vec<GroupId> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.members.contains(&controller))
            .map(|(i, _)| GroupId(i))
            .collect()
    }

    /// Whether `controller` sits on the final committee.
    pub fn in_final_com(&self, controller: usize) -> bool {
        self.final_com.contains(&controller)
    }

    /// The final-committee leader.
    pub fn final_leader(&self) -> usize {
        self.final_com[0]
    }

    /// Position of `controller` within the final committee (its replica
    /// index in the final PBFT instance).
    pub fn final_replica_index(&self, controller: usize) -> Option<usize> {
        self.final_com.iter().position(|&m| m == controller)
    }

    /// Number of groups (`k` in the complexity analysis).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_crypto::rng::DetRng;
    use curb_crypto::KeyPair;

    fn keys(n: usize) -> Vec<PublicKey> {
        let mut rng = DetRng::new(777);
        (0..n)
            .map(|_| KeyPair::generate(&mut rng).public())
            .collect()
    }

    fn epoch_from(groups: Vec<Vec<usize>>, n_ctrl: usize, f: usize) -> Epoch {
        let assignment = Assignment::from_groups(groups, n_ctrl);
        Epoch::build(assignment, &keys(n_ctrl), f, vec![false; n_ctrl])
    }

    #[test]
    fn identical_sets_share_a_group() {
        let e = epoch_from(
            vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
            8,
            1,
        );
        assert_eq!(e.group_count(), 2);
        assert_eq!(e.group_of(SwitchId(0)), e.group_of(SwitchId(1)));
        assert_ne!(e.group_of(SwitchId(0)), e.group_of(SwitchId(2)));
        assert_eq!(e.switches_of_group[0], vec![SwitchId(0), SwitchId(1)]);
    }

    #[test]
    fn groups_ordered_by_identity_number() {
        let e = epoch_from(vec![vec![4, 5, 6, 7], vec![0, 1, 2, 3]], 8, 1);
        // Group containing 0 must be group 0 despite appearing second.
        assert!(e.groups[0].members.contains(&0));
        assert_eq!(e.group_of(SwitchId(1)), GroupId(0));
    }

    #[test]
    fn leader_is_highest_key() {
        let ks = keys(4);
        let e = Epoch::build(
            Assignment::from_groups(vec![vec![0, 1, 2, 3]], 4),
            &ks,
            1,
            vec![false; 4],
        );
        let leader = e.groups[0].leader();
        let max_key = (0..4).max_by_key(|&j| ks[j].as_scalar()).unwrap();
        assert_eq!(leader, max_key);
        assert_eq!(e.groups[0].replica_index(leader), Some(0));
    }

    #[test]
    fn final_committee_has_3f_plus_1_distinct_members() {
        // 5 disjoint groups of 4 => committee of 4 from the first 4
        // groups.
        let groups: Vec<Vec<usize>> = (0..5).map(|g| (4 * g..4 * g + 4).collect()).collect();
        let e = epoch_from(groups, 20, 1);
        assert_eq!(e.final_com.len(), 4);
        let distinct: BTreeSet<usize> = e.final_com.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
        // One member per group, from groups 0..4.
        for (g, _) in e.groups.iter().enumerate().take(4) {
            assert_eq!(
                e.final_com
                    .iter()
                    .filter(|&&m| e.groups[g].members.contains(&m))
                    .count(),
                1,
                "group {g}"
            );
        }
    }

    #[test]
    fn final_committee_wraps_when_few_groups() {
        // A single group of 6 must still yield a committee of 4.
        let e = epoch_from(vec![vec![0, 1, 2, 3, 4, 5]], 6, 1);
        assert_eq!(e.final_com.len(), 4);
        let distinct: BTreeSet<usize> = e.final_com.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn final_committee_caps_at_distinct_controllers() {
        let e = epoch_from(vec![vec![0, 1]], 2, 1); // only 2 controllers
        assert_eq!(e.final_com.len(), 2);
    }

    #[test]
    fn final_leader_is_highest_key() {
        let ks = keys(8);
        let e = Epoch::build(
            Assignment::from_groups(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8),
            &ks,
            1,
            vec![false; 8],
        );
        let leader = e.final_leader();
        for &m in &e.final_com {
            assert!(ks[leader].as_scalar() >= ks[m].as_scalar());
        }
        assert_eq!(e.final_replica_index(leader), Some(0));
    }

    #[test]
    fn controller_group_membership_lookup() {
        let e = epoch_from(vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]], 6, 1);
        assert_eq!(e.groups_of_controller(2).len(), 2);
        assert_eq!(e.groups_of_controller(0).len(), 1);
        let outside = e.groups_of_controller(5).len() + e.groups_of_controller(4).len();
        assert_eq!(outside, 2);
    }

    #[test]
    fn deterministic_construction() {
        let a = epoch_from(vec![vec![0, 1, 2, 3], vec![1, 2, 3, 4]], 5, 1);
        let b = epoch_from(vec![vec![0, 1, 2, 3], vec![1, 2, 3, 4]], 5, 1);
        assert_eq!(a, b);
    }
}

//! The s-agent (switch proxy): Algorithm 1 of the paper, plus the
//! byzantine-detection rules of Step 4.
//!
//! A switch forwards data-plane packets using its flow table; on a
//! table miss it buffers the packet and broadcasts a `PKT-IN` request to
//! its controller group. A configuration is accepted once `f + 1`
//! identical replies arrive; the flow table (or, for `RE-ASS`, the
//! controller list) is then updated. The s-agent also watches its
//! controllers:
//!
//! * a controller that fails to reply before the timeout earns a *miss
//!   strike* (accused after `suspect_threshold` strikes);
//! * a reply that contradicts the accepted `f + 1` majority triggers an
//!   *immediate* accusation;
//! * a reply arriving long after the quorum formed earns a *lazy
//!   strike* (accused after `lazy_patience` strikes — the paper's
//!   experiment ❸).

use crate::ids::SwitchId;
use crate::msg::CurbMsg;
use crate::payload::{ConfigData, ReqKind, RequestKey, RequestRecord, SignedRequest};
use crate::round::{EvidenceBook, ReplyMatcher};
use crate::shared::Shared;
use curb_crypto::rng::DetRng;
use curb_crypto::KeyPair;
use curb_sdn::flow::{FlowAction, FlowEntry, FlowMatch, FlowTable};
use curb_sdn::{FlowMod, HostId, Packet, PortId};
use curb_sim::{Actor, Context, NodeId, SimTime, TimerTag};
use std::collections::BTreeMap;

/// Outcome of one request, for metrics collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqOutcome {
    /// The request.
    pub key: RequestKey,
    /// Whether it was a `RE-ASS`.
    pub is_reassignment: bool,
    /// When the request was broadcast.
    pub sent_at: SimTime,
    /// When `f + 1` matching replies arrived (`None` = never).
    pub accepted_at: Option<SimTime>,
}

/// One in-flight request.
#[derive(Debug)]
struct Pending {
    record: RequestRecord,
    sent_at: SimTime,
    /// `R_s`: the shared reply-matching state machine.
    matcher: ReplyMatcher,
    /// Buffered data packet awaiting the flow rule (PKT-IN only).
    buffered_packet: Option<Packet>,
}

/// The switch actor.
pub struct SwitchActor {
    id: SwitchId,
    shared: std::sync::Arc<Shared>,
    /// `ctrList_s`: the switch's current controller group.
    ctrl_list: Vec<usize>,
    keys: Option<KeyPair>,
    rng: DetRng,
    flow_table: FlowTable,
    next_seq: u64,
    outstanding: BTreeMap<u64, Pending>,
    /// Strike tallies and the accused set (shared with the cluster
    /// s-agent via [`crate::round`]).
    evidence: EvidenceBook,
    /// Data-plane packets successfully forwarded.
    forwarded: u64,
    /// Completed request outcomes, drained by the orchestrator.
    outcomes: Vec<ReqOutcome>,
}

impl std::fmt::Debug for SwitchActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchActor")
            .field("id", &self.id)
            .field("ctrl_list", &self.ctrl_list)
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

impl SwitchActor {
    /// Creates switch `id` with its initial controller list.
    pub fn new(
        id: SwitchId,
        shared: std::sync::Arc<Shared>,
        ctrl_list: Vec<usize>,
        keys: Option<KeyPair>,
        rng: DetRng,
    ) -> Self {
        let evidence =
            EvidenceBook::new(shared.config.suspect_threshold, shared.config.lazy_patience);
        SwitchActor {
            id,
            shared,
            ctrl_list,
            keys,
            rng,
            flow_table: FlowTable::with_table_miss(),
            next_seq: 0,
            outstanding: BTreeMap::new(),
            evidence,
            forwarded: 0,
            outcomes: Vec::new(),
        }
    }

    /// Switch id.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Current controller list.
    pub fn ctrl_list(&self) -> &[usize] {
        &self.ctrl_list
    }

    /// Replaces the controller list (used by the orchestrator when a
    /// reassignment epoch is installed; normally the switch updates
    /// itself from an accepted `RE-ASS` config).
    pub fn set_ctrl_list(&mut self, list: Vec<usize>) {
        self.adopt_ctrl_list(list);
    }

    /// Applies a (possibly identical) controller list with the
    /// detection bookkeeping of [`EvidenceBook::adopt_ctrl_list`].
    fn adopt_ctrl_list(&mut self, list: Vec<usize>) {
        self.evidence.adopt_ctrl_list(list != self.ctrl_list, &list);
        self.ctrl_list = list;
    }

    /// The switch's flow table.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flow_table
    }

    /// Number of data-plane packets forwarded so far.
    pub fn forwarded_packets(&self) -> u64 {
        self.forwarded
    }

    /// Drains completed request outcomes. Outstanding requests are
    /// closed as unaccepted if `close_all` is set (round boundary).
    pub fn drain_outcomes(&mut self, close_all: bool) -> Vec<ReqOutcome> {
        if close_all {
            let keys: Vec<u64> = self.outstanding.keys().copied().collect();
            for seq in keys {
                let p = self.outstanding.remove(&seq).expect("key exists");
                self.outcomes.push(ReqOutcome {
                    key: p.record.key,
                    is_reassignment: matches!(p.record.kind, ReqKind::ReAss { .. }),
                    sent_at: p.sent_at,
                    accepted_at: p.matcher.accepted_at().map(SimTime::from_nanos),
                });
            }
        }
        std::mem::take(&mut self.outcomes)
    }

    fn broadcast_request(
        &mut self,
        ctx: &mut Context<'_, CurbMsg>,
        kind: ReqKind,
        packet: Option<Packet>,
    ) {
        self.next_seq += 1;
        let record = RequestRecord {
            key: RequestKey {
                switch: self.id,
                seq: self.next_seq,
            },
            kind,
        };
        let signature = match (&self.keys, self.shared.config.sign_requests) {
            (Some(keys), true) => {
                let sig = keys.sign(&record.signing_bytes(), &mut self.rng);
                Some((keys.public(), sig))
            }
            _ => None,
        };
        let req = SignedRequest {
            record: record.clone(),
            signature,
        };
        for &c in &self.ctrl_list {
            let node = self
                .shared
                .plan
                .controller_node(crate::ids::ControllerId(c));
            ctx.send(node, CurbMsg::Request(req.clone()));
        }
        let accept_quorum = self.shared.accept_f() + 1;
        self.outstanding.insert(
            record.key.seq,
            Pending {
                record,
                sent_at: ctx.now(),
                matcher: ReplyMatcher::new(
                    accept_quorum,
                    self.shared.config.lazy_margin.as_nanos() as u64,
                ),
                buffered_packet: packet,
            },
        );
        ctx.set_timer(self.shared.config.timeout, self.next_seq);
    }

    /// Data-plane packet arrival: forward on a table hit, or buffer and
    /// raise `PKT-IN` on a miss.
    fn on_host_packet(&mut self, ctx: &mut Context<'_, CurbMsg>, packet: Packet) {
        match self.flow_table.apply(&packet).map(<[FlowAction]>::first) {
            Some(Some(FlowAction::Output(_))) => {
                self.forwarded += 1;
            }
            Some(Some(FlowAction::Drop)) => {}
            _ => {
                // Table miss (or explicit punt): Step 1.
                let dst_host = packet.dst.0;
                self.broadcast_request(ctx, ReqKind::PktIn { dst_host }, Some(packet));
            }
        }
    }

    /// REPLY arrival (Algorithm 1, lines 3-13).
    fn on_reply(
        &mut self,
        ctx: &mut Context<'_, CurbMsg>,
        controller: usize,
        key: RequestKey,
        config: ConfigData,
    ) {
        if key.switch != self.id || !self.ctrl_list.contains(&controller) {
            return;
        }
        let now = ctx.now();
        // A controller that responds is not "missing": miss strikes are
        // consecutive, so any reply clears the tally — even when the
        // request has already been closed out.
        self.evidence.clear_miss(controller);
        let Some(pending) = self.outstanding.get_mut(&key.seq) else {
            return;
        };
        let outcome = pending.matcher.on_reply(controller, config, now.as_nanos());
        if let Some(config) = &outcome.newly_accepted {
            let packet = pending.buffered_packet.take();
            self.apply_config(&config.clone(), packet, now);
        }
        // Immediate accusation of contradicting controllers (either
        // pre-quorum contradictors surfacing at acceptance, or a late
        // reply disagreeing with the accepted config).
        self.accuse(ctx, outcome.contradictors);
        if outcome.straggler {
            // Post-timeout straggler: worse than "lazy within the
            // timeout" — give it a lazy strike.
            if self.evidence.lazy_strike(controller) {
                self.accuse(ctx, vec![controller]);
            }
        }
    }

    /// Applies an accepted configuration (Step 4).
    fn apply_config(&mut self, config: &ConfigData, packet: Option<Packet>, now: SimTime) {
        match config {
            ConfigData::FlowRules(rules) => {
                // Install through FLOW_MOD commands, as a PACKET_OUT
                // carrying flow modifications would.
                for r in rules {
                    let command = FlowMod::add(FlowEntry::new(
                        r.priority,
                        FlowMatch::dst_host(HostId(r.dst_host)),
                        vec![FlowAction::Output(PortId(r.out_port))],
                    ));
                    command.apply(&mut self.flow_table, now.as_nanos());
                }
                if let Some(p) = packet {
                    // PACKET_OUT: release the buffered packet through the
                    // fresh rule.
                    if matches!(
                        self.flow_table.apply(&p).map(<[FlowAction]>::first),
                        Some(Some(FlowAction::Output(_)))
                    ) {
                        self.forwarded += 1;
                    }
                }
            }
            ConfigData::NewAssignment { groups } => {
                if let Some(list) = groups.get(self.id.0) {
                    self.adopt_ctrl_list(list.clone());
                }
            }
        }
    }

    /// Request-timeout audit: miss strikes, lazy strikes, accusations.
    fn on_request_timeout(&mut self, ctx: &mut Context<'_, CurbMsg>, seq: u64) {
        let Some(pending) = self.outstanding.get_mut(&seq) else {
            return;
        };
        let Some(audit) = pending.matcher.audit(&self.ctrl_list) else {
            return;
        };
        let mut to_accuse = Vec::new();
        for c in audit.missing {
            if self.evidence.miss_strike(c) {
                to_accuse.push(c);
            }
        }
        for c in audit.lazies {
            if self.evidence.lazy_strike(c) {
                to_accuse.push(c);
            }
        }
        self.accuse(ctx, to_accuse);
    }

    /// Issues a `RE-ASS` accusing `controllers` (deduplicated).
    fn accuse(&mut self, ctx: &mut Context<'_, CurbMsg>, controllers: Vec<usize>) {
        let fresh = self.evidence.fresh_accusations(controllers);
        if fresh.is_empty() {
            return;
        }
        self.broadcast_request(ctx, ReqKind::ReAss { accused: fresh }, None);
    }
}

impl Actor<CurbMsg> for SwitchActor {
    fn on_message(&mut self, ctx: &mut Context<'_, CurbMsg>, _from: NodeId, msg: CurbMsg) {
        match msg {
            CurbMsg::HostPacket { packet } => self.on_host_packet(ctx, packet),
            CurbMsg::TriggerReassign { accused } => {
                self.broadcast_request(ctx, ReqKind::ReAss { accused }, None);
            }
            CurbMsg::Reply {
                controller,
                key,
                config,
            } => self.on_reply(ctx, controller, key, config),
            _ => {
                // Control-plane internals are not addressed to switches.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CurbMsg>, tag: TimerTag) {
        self.on_request_timeout(ctx, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CurbConfig;
    use crate::ids::NodePlan;
    use crate::payload::FlowRuleSpec;
    use curb_sim::Simulation;
    use std::sync::Arc;
    use std::time::Duration;

    /// How a scripted controller answers requests.
    #[derive(Debug, Clone)]
    enum Script {
        /// Reply with the given flow rule after the delay.
        Reply { port: u16, delay: Duration },
        /// Never reply.
        Silent,
    }

    /// Test node: one real switch plus scripted controllers.
    #[derive(Debug)]
    enum TestNode {
        Switch(Box<SwitchActor>),
        Controller { id: usize, script: Script },
    }

    impl curb_sim::Actor<CurbMsg> for TestNode {
        fn on_message(&mut self, ctx: &mut Context<'_, CurbMsg>, from: NodeId, msg: CurbMsg) {
            match self {
                TestNode::Switch(s) => s.on_message(ctx, from, msg),
                TestNode::Controller { id, script } => {
                    if let CurbMsg::Request(req) = msg {
                        if let Script::Reply { port, delay } = script {
                            let config = ConfigData::FlowRules(vec![FlowRuleSpec {
                                priority: 10,
                                dst_host: match req.record.kind {
                                    ReqKind::PktIn { dst_host } => dst_host,
                                    ReqKind::ReAss { .. } => 0,
                                },
                                out_port: *port,
                            }]);
                            ctx.send_delayed(
                                from,
                                CurbMsg::Reply {
                                    controller: *id,
                                    key: req.record.key,
                                    config,
                                },
                                *delay,
                            );
                        }
                    }
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, CurbMsg>, tag: curb_sim::TimerTag) {
            if let TestNode::Switch(s) = self {
                s.on_timer(ctx, tag);
            }
        }
    }

    fn shared() -> Arc<Shared> {
        Arc::new(Shared {
            config: CurbConfig::default(),
            plan: NodePlan {
                n_controllers: 4,
                n_switches: 1,
            },
            keys: Vec::new(),
            cs_delay_ms: vec![vec![1.0; 4]],
            cc_delay_ms: vec![vec![1.0; 4]; 4],
            next_hop_port: vec![vec![0]],
        })
    }

    /// Builds a 5-node sim: controllers 0..4 with the given scripts,
    /// the switch at node 4.
    fn harness(scripts: [Script; 4]) -> Simulation<CurbMsg, TestNode> {
        let shared = shared();
        let mut actors: Vec<TestNode> = scripts
            .iter()
            .cloned()
            .enumerate()
            .map(|(id, script)| TestNode::Controller { id, script })
            .collect();
        actors.push(TestNode::Switch(Box::new(SwitchActor::new(
            SwitchId(0),
            shared,
            vec![0, 1, 2, 3],
            None,
            curb_crypto::rng::DetRng::new(1),
        ))));
        let mut sim = Simulation::new(actors);
        sim.set_uniform_delay(Duration::from_millis(5));
        sim
    }

    fn switch(sim: &Simulation<CurbMsg, TestNode>) -> &SwitchActor {
        match sim.actor(NodeId(4)) {
            TestNode::Switch(s) => s,
            TestNode::Controller { .. } => unreachable!("node 4 is the switch"),
        }
    }

    /// Injects a packet to a fresh destination (guaranteed table miss).
    fn inject_packet(sim: &mut Simulation<CurbMsg, TestNode>, dst: u32) {
        let packet = Packet::new(HostId(0), HostId(dst));
        sim.post(NodeId(4), NodeId(4), CurbMsg::HostPacket { packet });
    }

    fn fast(port: u16) -> Script {
        Script::Reply {
            port,
            delay: Duration::ZERO,
        }
    }

    #[test]
    fn quorum_of_matching_replies_installs_the_rule() {
        let mut sim = harness([fast(3), fast(3), fast(3), fast(3)]);
        inject_packet(&mut sim, 7);
        sim.run_to_quiescence();
        let sw = switch(&sim);
        // Table-miss + the installed rule.
        assert_eq!(sw.flow_table().len(), 2);
        // The buffered packet was released through the new rule.
        assert_eq!(sw.forwarded_packets(), 1);
    }

    #[test]
    fn one_matching_reply_is_not_enough() {
        // accept quorum is f+1 = 2; only controller 0 replies.
        let mut sim = harness([fast(3), Script::Silent, Script::Silent, Script::Silent]);
        inject_packet(&mut sim, 7);
        sim.run_to_quiescence();
        let sw = switch(&sim);
        assert_eq!(sw.flow_table().len(), 1, "only the table-miss entry");
        assert_eq!(sw.forwarded_packets(), 0);
    }

    #[test]
    fn contradicting_controller_is_accused_immediately() {
        // Three agree on port 3; controller 1 contradicts with port 9
        // and must be accused once the quorum forms.
        let mut sim = harness([
            fast(3),
            Script::Reply {
                port: 9,
                delay: Duration::ZERO,
            },
            fast(3),
            fast(3),
        ]);
        inject_packet(&mut sim, 7);
        sim.run_to_quiescence();
        // The accusation is a RE-ASS request on the wire.
        assert!(sim.stats().count("RE-ASS") >= 4, "broadcast to the group");
        let sw = switch(&sim);
        assert!(sw.flow_table().len() >= 2, "majority config still applied");
    }

    #[test]
    fn silent_controller_earns_miss_strikes_and_accusation() {
        let mut sim = harness([fast(3), fast(3), fast(3), Script::Silent]);
        // suspect_threshold = 5 one-per-round requests, each to a fresh
        // destination so every round raises a PKT-IN.
        for dst in 0..5 {
            inject_packet(&mut sim, dst);
            sim.run_to_quiescence();
        }
        assert!(
            sim.stats().count("RE-ASS") >= 4,
            "5 consecutive misses must trigger an accusation"
        );
    }

    #[test]
    fn responsive_controllers_are_never_accused() {
        let mut sim = harness([fast(3), fast(3), fast(3), fast(3)]);
        for dst in 0..8 {
            inject_packet(&mut sim, dst);
            sim.run_to_quiescence();
        }
        assert_eq!(sim.stats().count("RE-ASS"), 0);
        assert_eq!(switch(&sim).forwarded_packets(), 8);
    }

    #[test]
    fn straggler_within_margin_not_accused() {
        // Controller 3 is slower than the quorum but within the lazy
        // margin (300 ms): no accusation even after many rounds.
        let mut sim = harness([
            fast(3),
            fast(3),
            fast(3),
            Script::Reply {
                port: 3,
                delay: Duration::from_millis(100),
            },
        ]);
        for dst in 0..8 {
            inject_packet(&mut sim, dst);
            sim.run_to_quiescence();
        }
        assert_eq!(sim.stats().count("RE-ASS"), 0);
    }

    #[test]
    fn lazy_controller_beyond_margin_eventually_accused() {
        // 400 ms behind the quorum, beyond the 300 ms margin: lazy
        // strikes accumulate to the patience threshold (5).
        let mut sim = harness([
            fast(3),
            fast(3),
            fast(3),
            Script::Reply {
                port: 3,
                delay: Duration::from_millis(400),
            },
        ]);
        for dst in 0..6 {
            inject_packet(&mut sim, dst);
            sim.run_to_quiescence();
        }
        assert!(sim.stats().count("RE-ASS") >= 4);
    }

    #[test]
    fn reassignment_config_updates_ctrl_list() {
        let mut sim = harness([fast(3), fast(3), fast(3), fast(3)]);
        // Deliver a NewAssignment reply pair directly.
        let key = RequestKey {
            switch: SwitchId(0),
            seq: 1,
        };
        // Issue the request first so the key exists.
        sim.post(
            NodeId(4),
            NodeId(4),
            CurbMsg::TriggerReassign { accused: vec![3] },
        );
        sim.run_until(curb_sim::SimTime::from_nanos(1_000_000)); // deliver request only
        let config = ConfigData::NewAssignment {
            groups: vec![vec![0, 1, 2]],
        };
        for c in [0usize, 1] {
            sim.post(
                NodeId(c),
                NodeId(4),
                CurbMsg::Reply {
                    controller: c,
                    key,
                    config: config.clone(),
                },
            );
        }
        sim.run_to_quiescence();
        assert_eq!(switch(&sim).ctrl_list(), &[0, 1, 2]);
    }
}

//! The controller actor: Algorithm 2 (utilities) and Algorithm 3 (event
//! handlers) of the paper.
//!
//! A controller may belong to several controller groups; it runs one
//! PBFT replica per group, plus (if elected) a replica in the final
//! committee. The normal-case flow is:
//!
//! 1. a switch request arrives → the group leader buffers it and, after
//!    the batch window, packs a transaction list and launches
//!    Intra-PBFT; followers arm a watchdog that triggers a view change
//!    if the request does not commit within the timeout;
//! 2. on intra-group decision every member certifies the list to the
//!    final committee (`AGREE`);
//! 3. the final-committee leader packs certified lists into a block and
//!    launches Final-PBFT; on decision members announce `FINAL-AGREE`
//!    to all controllers;
//! 4. every controller appends the block after `f + 1` matching
//!    announcements and replies to the switches it governs.

use crate::config::PlaneMode;
use crate::epoch::Epoch;
use crate::ids::{ControllerId, GroupId};
use crate::msg::CurbMsg;
use crate::payload::{
    BlockPayload, ConfigData, ProtoTx, ReqKind, RequestKey, RequestRecord, SignedRequest,
    TxListPayload,
};
use crate::shared::{ControllerBehavior, Shared};
use curb_assign::solve;
use curb_chain::{Block, Blockchain};
use curb_consensus::{BftCore, CoreMsg, Dest, Payload};
use curb_crypto::rng::DetRng;
use curb_crypto::sha256::Digest;
use curb_crypto::KeyPair;
use curb_sim::{Actor, Context, NodeId, TimerTag};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Timer-tag kinds (encoded in the top byte of the tag).
const TAG_BATCH: u64 = 1 << 56;
const TAG_WATCH: u64 = 2 << 56;
const TAG_BLOCK: u64 = 3 << 56;
const TAG_PROPOSE: u64 = 4 << 56;
const TAG_MASK: u64 = 0xFF << 56;

/// Per-group consensus state.
#[derive(Debug)]
struct GroupState {
    members: Vec<usize>,
    replica: BftCore<TxListPayload>,
    /// Requests received but not yet committed (kept by every member so
    /// a post-view-change leader can re-handle them).
    pending: VecDeque<RequestRecord>,
    /// Requests that completed intra-group consensus and now await the
    /// final committee; the group's watchdog must not view-change for
    /// these (the group already did its part).
    intra_done: HashSet<RequestKey>,
    /// Requests this controller has proposed and whose instance is
    /// still running — they must not be re-batched every batch window
    /// while consensus is in flight.
    proposed: HashSet<RequestKey>,
    batch_timer_set: bool,
}

impl GroupState {
    fn new(kind: curb_consensus::CoreKind, members: Vec<usize>, me: usize) -> Self {
        let idx = members
            .iter()
            .position(|&m| m == me)
            .expect("controller must be a group member");
        let n = members.len().max(1);
        GroupState {
            members,
            replica: BftCore::new(kind, idx, n),
            pending: VecDeque::new(),
            intra_done: HashSet::new(),
            proposed: HashSet::new(),
            batch_timer_set: false,
        }
    }

    fn my_index(&self) -> usize {
        self.replica.id()
    }

    fn i_am_leader(&self) -> bool {
        self.replica.is_leader()
    }
}

/// The controller actor.
pub struct ControllerActor {
    id: usize,
    shared: Arc<Shared>,
    epoch: Arc<Epoch>,
    #[allow(dead_code)] // identity key; used when transaction signing is on
    keys: KeyPair,
    rng: DetRng,
    behavior: ControllerBehavior,
    groups: BTreeMap<usize, GroupState>,
    final_replica: Option<BftCore<BlockPayload>>,
    /// Final committee: certified lists awaiting block inclusion.
    block_buffer: Vec<TxListPayload>,
    /// Groups whose certified list has been seen this round (drives the
    /// non-parallel "all groups reported" block cut).
    groups_seen: HashSet<usize>,
    /// `AGREE` votes per transaction-list digest.
    agree_votes: HashMap<Digest, (TxListPayload, BTreeSet<usize>)>,
    /// Digests already moved into a block proposal.
    buffered_lists: HashSet<Digest>,
    block_timer_set: bool,
    chain: Blockchain,
    /// Requests already committed on chain (reqBuffer dedup).
    committed: HashSet<RequestKey>,
    /// Controllers accused by RE-ASS transactions committed on chain;
    /// every later OP solve excludes them, so simultaneous accusations
    /// from different groups converge.
    accused_on_chain: BTreeSet<usize>,
    /// `FINAL-AGREE` votes per block hash (for non-committee members).
    final_agree_votes: HashMap<Digest, (Block, BTreeSet<usize>)>,
    /// Blocks certified but not yet appendable (height gap).
    pending_blocks: BTreeMap<u64, Block>,
    /// Transaction lists computed but whose (simulated) computation
    /// time has not yet elapsed, per group.
    staged_proposals: BTreeMap<usize, Vec<ProtoTx>>,
    /// Height of our in-flight block proposal, if above the chain tip.
    last_proposed_height: u64,
    /// Watchdog bookkeeping: timer id → (group, request, attempt).
    watch_seq: u64,
    watches: HashMap<u64, (usize, RequestKey, u32)>,
}

impl std::fmt::Debug for ControllerActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControllerActor")
            .field("id", &self.id)
            .field("groups", &self.groups.len())
            .field("chain_height", &self.chain.height())
            .field("behavior", &self.behavior)
            .finish()
    }
}

impl ControllerActor {
    /// Creates controller `id` in the given epoch.
    pub fn new(
        id: usize,
        shared: Arc<Shared>,
        epoch: Arc<Epoch>,
        keys: KeyPair,
        rng: DetRng,
        genesis_record: &[u8],
    ) -> Self {
        let chain = Blockchain::with_genesis(genesis_record);
        let mut actor = ControllerActor {
            id,
            shared,
            epoch: epoch.clone(),
            keys,
            rng,
            behavior: ControllerBehavior::Honest,
            groups: BTreeMap::new(),
            final_replica: None,
            block_buffer: Vec::new(),
            groups_seen: HashSet::new(),
            agree_votes: HashMap::new(),
            buffered_lists: HashSet::new(),
            block_timer_set: false,
            chain,
            committed: HashSet::new(),
            accused_on_chain: BTreeSet::new(),
            final_agree_votes: HashMap::new(),
            pending_blocks: BTreeMap::new(),
            staged_proposals: BTreeMap::new(),
            last_proposed_height: 0,
            watch_seq: 0,
            watches: HashMap::new(),
        };
        actor.install_epoch(epoch);
        actor
    }

    /// Controller id.
    pub fn id(&self) -> ControllerId {
        ControllerId(self.id)
    }

    /// This controller's view of the blockchain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Sets the fault-injection behaviour.
    pub fn set_behavior(&mut self, behavior: ControllerBehavior) {
        self.behavior = behavior;
    }

    /// Current behaviour.
    pub fn behavior(&self) -> ControllerBehavior {
        self.behavior
    }

    /// Installs a new epoch (after a committed reassignment): rebuilds
    /// group replicas. In-flight uncommitted requests are dropped — the
    /// issuing switch simply re-requests under the new assignment —
    /// which also retires their watchdogs, so the old epoch's view
    /// churn cannot leak into the new one.
    pub fn install_epoch(&mut self, epoch: Arc<Epoch>) {
        self.groups.clear();
        self.watches.clear();
        self.epoch = epoch;
        let kind = self.shared.config.consensus_core;
        for gid in self.epoch.groups_of_controller(self.id) {
            let members = self.epoch.groups[gid.0].members.clone();
            let state = GroupState::new(kind, members, self.id);
            self.groups.insert(gid.0, state);
        }
        self.final_replica = self
            .epoch
            .final_replica_index(self.id)
            .map(|idx| BftCore::new(kind, idx, self.epoch.final_com.len().max(1)));
        self.block_buffer.clear();
        self.groups_seen.clear();
        self.agree_votes.clear();
        self.buffered_lists.clear();
        self.block_timer_set = false;
        self.staged_proposals.clear();
        self.last_proposed_height = 0;
    }

    /// Starts a new protocol round: consensus instances are
    /// round-scoped, so replicas reset to the *designated* leaders (the
    /// paper fixes leader positions, constraint C2.6). A byzantine
    /// designated leader therefore degrades every round until a
    /// reassignment removes it — the behaviour of the paper's Fig. 4.
    pub fn begin_round(&mut self) {
        let epoch = self.epoch.clone();
        self.install_epoch(epoch);
    }

    /// State transfer (the blockchain equivalent of PBFT's checkpoint
    /// sync): adopts missing blocks from the honest majority chain. A
    /// controller that missed FINAL-AGREE announcements in a chaotic
    /// round would otherwise stay behind forever — fatal if it later
    /// becomes the final-committee leader.
    pub fn catch_up(&mut self, blocks: &[Block]) {
        for block in blocks {
            if block.header.height != self.chain.height() + 1 {
                continue;
            }
            let protos: Vec<ProtoTx> = block
                .txs
                .iter()
                .filter_map(ProtoTx::from_chain_tx)
                .collect();
            if self.chain.append(block.clone()).is_err() {
                return;
            }
            for tx in protos {
                self.committed.insert(tx.record.key);
                if let ReqKind::ReAss { accused } = &tx.record.kind {
                    self.accused_on_chain.extend(accused.iter().copied());
                }
            }
        }
    }

    /// Behaviour-aware send: lazy controllers add a uniform extra delay
    /// to every outgoing message.
    fn send(&mut self, ctx: &mut Context<'_, CurbMsg>, to: NodeId, msg: CurbMsg) {
        match self.behavior {
            ControllerBehavior::Honest => ctx.send(to, msg),
            ControllerBehavior::Silent => {}
            ControllerBehavior::Lazy { min, max } => {
                let span = max.saturating_sub(min).as_nanos() as u64;
                let extra = min
                    + core::time::Duration::from_nanos(if span == 0 {
                        0
                    } else {
                        self.rng.next_below(span)
                    });
                ctx.send_delayed(to, msg, extra);
            }
        }
    }

    fn controller_node(&self, c: usize) -> NodeId {
        self.shared.plan.controller_node(ControllerId(c))
    }

    fn switch_node(&self, s: crate::ids::SwitchId) -> NodeId {
        self.shared.plan.switch_node(s)
    }

    /// Routes intra-group consensus outbounds onto the simulated
    /// network.
    fn route_group(
        &mut self,
        ctx: &mut Context<'_, CurbMsg>,
        gid: usize,
        outs: Vec<(Dest, CoreMsg<TxListPayload>)>,
    ) {
        let members = match self.groups.get(&gid) {
            Some(g) => g.members.clone(),
            None => return,
        };
        for (dest, msg) in outs {
            match dest {
                Dest::Broadcast => {
                    for &m in &members {
                        if m != self.id {
                            self.send(
                                ctx,
                                self.controller_node(m),
                                CurbMsg::IntraPbft {
                                    group: GroupId(gid),
                                    msg: msg.clone(),
                                },
                            );
                        }
                    }
                }
                Dest::To(idx) => {
                    if let Some(&m) = members.get(idx) {
                        if m != self.id {
                            self.send(
                                ctx,
                                self.controller_node(m),
                                CurbMsg::IntraPbft {
                                    group: GroupId(gid),
                                    msg,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// Routes final-committee consensus outbounds.
    fn route_final(
        &mut self,
        ctx: &mut Context<'_, CurbMsg>,
        outs: Vec<(Dest, CoreMsg<BlockPayload>)>,
    ) {
        let members = self.epoch.final_com.clone();
        for (dest, msg) in outs {
            match dest {
                Dest::Broadcast => {
                    for &m in &members {
                        if m != self.id {
                            self.send(
                                ctx,
                                self.controller_node(m),
                                CurbMsg::FinalPbft { msg: msg.clone() },
                            );
                        }
                    }
                }
                Dest::To(idx) => {
                    if let Some(&m) = members.get(idx) {
                        if m != self.id {
                            self.send(ctx, self.controller_node(m), CurbMsg::FinalPbft { msg });
                        }
                    }
                }
            }
        }
    }

    /// `HandleRequest` of Algorithm 2.
    fn on_request(&mut self, ctx: &mut Context<'_, CurbMsg>, req: SignedRequest) {
        if self.shared.config.sign_requests && !req.verify() {
            return;
        }
        let record = req.record;
        let key = record.key;
        if self.committed.contains(&key) {
            return; // duplicate of an already-settled request
        }
        let gid = self.epoch.group_of(key.switch);
        let Some(state) = self.groups.get_mut(&gid.0) else {
            return; // not a member of the governing group
        };
        if state.pending.iter().any(|r| r.key == key) {
            return; // duplicate of an in-flight request
        }
        state.pending.push_back(record);
        if state.i_am_leader() {
            if !state.batch_timer_set {
                state.batch_timer_set = true;
                ctx.set_timer(self.shared.config.batch_window, TAG_BATCH | gid.0 as u64);
            }
        } else {
            // Follower watchdog: if the request does not commit within
            // the timeout, demand a view change.
            self.watch_seq += 1;
            let watch = self.watch_seq;
            self.watches.insert(watch, (gid.0, key, 0));
            ctx.set_timer(self.shared.config.timeout, TAG_WATCH | watch);
        }
    }

    /// `ComputeConfig` of Algorithm 2. Returns the configuration and
    /// the computation cost, which the leader spends as simulated time
    /// before proposing (an OP solve is not free — Fig. 6 and Fig. 9 of
    /// the paper measure exactly this).
    fn compute_config(&mut self, record: &RequestRecord) -> Option<(ConfigData, Duration)> {
        match &record.kind {
            ReqKind::PktIn { dst_host } => {
                let dst_switch = self.shared.dst_switch(*dst_host);
                let port = self.shared.next_hop_port[record.key.switch.0][dst_switch.0];
                Some((
                    ConfigData::FlowRules(vec![crate::payload::FlowRuleSpec {
                        priority: 10,
                        dst_host: *dst_host,
                        out_port: port,
                    }]),
                    Duration::ZERO,
                ))
            }
            ReqKind::ReAss { accused } => {
                let mut accused: Vec<usize> = accused.clone();
                accused.extend(self.accused_on_chain.iter().copied());
                let accused = &accused;
                let leader_pins: Vec<Option<usize>> = (0..self.shared.plan.n_switches)
                    .map(|i| {
                        let g = self.epoch.group_of(crate::ids::SwitchId(i));
                        let leader = self.epoch.groups[g.0].leader();
                        if accused.contains(&leader) {
                            None
                        } else {
                            Some(leader)
                        }
                    })
                    .collect();
                let (model, options) = self.shared.reassignment_problem(
                    &self.epoch.removed,
                    accused,
                    &leader_pins,
                    &self.epoch.assignment,
                );
                let solution = solve(&model, &options).ok()?;
                let groups: Vec<Vec<usize>> = (0..self.shared.plan.n_switches)
                    .map(|i| solution.assignment.group(i).iter().copied().collect())
                    .collect();
                // Deterministic cost model instead of wall-clock time:
                // the simulation must not depend on host speed or build
                // profile. Coefficients approximate the release-build
                // solver (~1 µs per branch-and-bound node, ~150 µs per
                // assignment subproblem).
                let cost =
                    Duration::from_micros(solution.stats.nodes + 150 * solution.stats.leaf_evals);
                Some((ConfigData::NewAssignment { groups }, cost))
            }
        }
    }

    /// Leader batch-window expiry: pack pending requests into a txList
    /// and launch Intra-PBFT.
    fn on_batch_timer(&mut self, ctx: &mut Context<'_, CurbMsg>, gid: usize) {
        let Some(state) = self.groups.get_mut(&gid) else {
            return;
        };
        state.batch_timer_set = false;
        if !state.i_am_leader() {
            return;
        }
        let records: Vec<RequestRecord> = state
            .pending
            .iter()
            .filter(|r| !state.intra_done.contains(&r.key) && !state.proposed.contains(&r.key))
            .cloned()
            .collect();
        if records.is_empty() {
            return;
        }
        let mut txs = Vec::new();
        let mut compute_cost = Duration::ZERO;
        // Identical accusation sets in one batch share a single OP solve
        // (the paper's experiment ❷: three byzantine nodes removed "by
        // calculating OP once").
        let mut reass_cache: HashMap<Vec<usize>, Option<(ConfigData, Duration)>> = HashMap::new();
        for record in records {
            if self.committed.contains(&record.key) {
                continue;
            }
            let computed = match &record.kind {
                ReqKind::ReAss { accused } => {
                    let mut sorted = accused.clone();
                    sorted.sort_unstable();
                    match reass_cache.get(&sorted) {
                        Some(cached) => cached.clone().map(|(c, _)| (c, Duration::ZERO)),
                        None => {
                            let computed = self.compute_config(&record);
                            reass_cache.insert(sorted, computed.clone());
                            computed
                        }
                    }
                }
                ReqKind::PktIn { .. } => self.compute_config(&record),
            };
            if let Some((config, cost)) = computed {
                compute_cost += cost;
                txs.push(ProtoTx {
                    record,
                    handled_by: self.id,
                    config,
                });
            }
        }
        if txs.is_empty() {
            return;
        }
        if compute_cost.is_zero() {
            self.propose_txs(ctx, gid, txs);
        } else {
            // The computation occupies simulated time; propose when it
            // completes.
            self.staged_proposals.entry(gid).or_default().extend(txs);
            ctx.set_timer(compute_cost, TAG_PROPOSE | gid as u64);
        }
    }

    /// Launches Intra-PBFT over `txs` if this controller (still) leads
    /// the group.
    fn propose_txs(&mut self, ctx: &mut Context<'_, CurbMsg>, gid: usize, txs: Vec<ProtoTx>) {
        let txs: Vec<ProtoTx> = txs
            .into_iter()
            .filter(|t| !self.committed.contains(&t.record.key))
            .collect();
        if txs.is_empty() {
            return;
        }
        let Some(state) = self.groups.get_mut(&gid) else {
            return;
        };
        for tx in &txs {
            state.proposed.insert(tx.record.key);
        }
        if let Ok(outs) = state.replica.propose(TxListPayload(txs)) {
            self.route_group(ctx, gid, outs);
            self.pump_group(ctx, gid);
        }
    }

    /// Staged-proposal timer: the simulated computation finished.
    fn on_propose_timer(&mut self, ctx: &mut Context<'_, CurbMsg>, gid: usize) {
        if let Some(txs) = self.staged_proposals.remove(&gid) {
            self.propose_txs(ctx, gid, txs);
        }
    }

    /// Follower watchdog expiry.
    fn on_watch_timer(&mut self, ctx: &mut Context<'_, CurbMsg>, watch: u64) {
        let Some((gid, key, attempt)) = self.watches.remove(&watch) else {
            return;
        };
        if self.committed.contains(&key) {
            return;
        }
        let Some(state) = self.groups.get_mut(&gid) else {
            return;
        };
        if !state.pending.iter().any(|r| r.key == key) {
            return;
        }
        let outs = if state.intra_done.contains(&key) {
            Vec::new() // waiting on final consensus; the group is fine
        } else {
            state.replica.start_view_change()
        };
        self.route_group(ctx, gid, outs);
        // Re-arm with exponential backoff so repeated escalations do
        // not congest the group.
        self.watch_seq += 1;
        let next = self.watch_seq;
        let attempt = (attempt + 1).min(3);
        self.watches.insert(next, (gid, key, attempt));
        ctx.set_timer(
            self.shared.config.timeout * (1 << attempt),
            TAG_WATCH | next,
        );
        self.pump_group(ctx, gid);
    }

    /// Post-processing after any group-replica interaction: drain
    /// decisions and let a (possibly new) leader propose pending work.
    fn pump_group(&mut self, ctx: &mut Context<'_, CurbMsg>, gid: usize) {
        // Drain decisions.
        let decided: Vec<TxListPayload> = {
            let Some(state) = self.groups.get_mut(&gid) else {
                return;
            };
            state
                .replica
                .take_decisions()
                .into_iter()
                .map(|(_, p)| p)
                .collect()
        };
        for list in decided {
            if list.0.is_empty() {
                continue; // view-change no-op
            }
            if let Some(state) = self.groups.get_mut(&gid) {
                for tx in &list.0 {
                    state.intra_done.insert(tx.record.key);
                }
            }
            self.on_intra_decided(ctx, gid, list);
        }
        // A leader (possibly newly elected by a view change) with
        // pending work arms the batch timer.
        let Some(state) = self.groups.get_mut(&gid) else {
            return;
        };
        // Only requests that still need intra-group consensus warrant a
        // new proposal; in-flight and intra-decided ones are someone
        // else's job now.
        let uncommitted = state.pending.iter().any(|r| {
            !self.committed.contains(&r.key)
                && !state.intra_done.contains(&r.key)
                && !state.proposed.contains(&r.key)
        });
        if state.i_am_leader() && uncommitted && !state.batch_timer_set {
            state.batch_timer_set = true;
            ctx.set_timer(self.shared.config.batch_window, TAG_BATCH | gid as u64);
        }
    }

    /// Intra-group consensus completed for `list` (Algorithm 3, line
    /// 11-12): certify to the final committee, or — in the flat
    /// baseline — finalise directly.
    fn on_intra_decided(
        &mut self,
        ctx: &mut Context<'_, CurbMsg>,
        gid: usize,
        list: TxListPayload,
    ) {
        match self.shared.config.mode {
            PlaneMode::Grouped { .. } => {
                let members = self.epoch.final_com.clone();
                for m in members {
                    if m == self.id {
                        // Deliver the AGREE to myself directly.
                        self.on_agree(ctx, self.id, GroupId(gid), list.clone());
                    } else {
                        self.send(
                            ctx,
                            self.controller_node(m),
                            CurbMsg::Agree {
                                group: GroupId(gid),
                                txs: list.clone(),
                            },
                        );
                    }
                }
            }
            PlaneMode::Flat => {
                // SimpleBFT-style: one consensus level; every member
                // appends an identical locally-built block.
                let txs: Vec<ProtoTx> = list
                    .0
                    .iter()
                    .filter(|t| !self.committed.contains(&t.record.key))
                    .cloned()
                    .collect();
                if txs.is_empty() {
                    return;
                }
                let chain_txs = txs.iter().map(ProtoTx::to_chain_tx).collect();
                // Deterministic timestamp: flat blocks are ordered by
                // the shared PBFT sequence, so height alone suffices.
                let block = Block::next(self.chain.tip(), chain_txs, self.chain.height() + 1);
                if self.chain.append(block).is_ok() {
                    self.settle_txs(ctx, &txs);
                }
            }
        }
    }

    /// `AGREE` handling (final committee members).
    fn on_agree(
        &mut self,
        ctx: &mut Context<'_, CurbMsg>,
        from: usize,
        group: GroupId,
        txs: TxListPayload,
    ) {
        if self.final_replica.is_none() {
            return;
        }
        let Some(g) = self.epoch.groups.get(group.0) else {
            return;
        };
        if !g.members.contains(&from) {
            return; // AGREE must come from a member of the claimed group
        }
        let digest = txs.digest();
        if self.buffered_lists.contains(&digest) {
            return;
        }
        let entry = self
            .agree_votes
            .entry(digest)
            .or_insert_with(|| (txs, BTreeSet::new()));
        entry.1.insert(from);
        if entry.1.len() > self.shared.config.f {
            let (list, _) = self.agree_votes.remove(&digest).expect("entry exists");
            self.buffered_lists.insert(digest);
            self.groups_seen.insert(group.0);
            self.block_buffer.push(list);
            self.maybe_cut_block(ctx, false);
        }
    }

    /// Final-committee leader: decide whether to cut a block now.
    fn maybe_cut_block(&mut self, ctx: &mut Context<'_, CurbMsg>, timer_fired: bool) {
        let Some(replica) = &self.final_replica else {
            return;
        };
        if !replica.is_leader() || self.block_buffer.is_empty() {
            return;
        }
        if self.last_proposed_height > self.chain.height() {
            return; // a proposal of ours is still in flight
        }
        let parallel = matches!(
            self.shared.config.mode,
            PlaneMode::Grouped { parallel: true }
        );
        // "Every group reported this round": counts groups, not lists,
        // so a straggler block cuts as soon as the last group arrives.
        let all_groups_in = self.groups_seen.len() >= self.epoch.group_count();
        if parallel || all_groups_in || timer_fired {
            self.cut_block(ctx);
        } else if !self.block_timer_set {
            self.block_timer_set = true;
            ctx.set_timer(self.shared.config.block_window, TAG_BLOCK);
        }
    }

    fn cut_block(&mut self, ctx: &mut Context<'_, CurbMsg>) {
        let lists = std::mem::take(&mut self.block_buffer);
        let mut chain_txs = Vec::new();
        let mut seen = HashSet::new();
        for list in lists {
            for tx in list.0 {
                if self.committed.contains(&tx.record.key) || !seen.insert(tx.record.key) {
                    continue;
                }
                chain_txs.push(tx.to_chain_tx());
            }
        }
        if chain_txs.is_empty() {
            return;
        }
        let parent = self.chain.tip();
        let block = Block::next(parent, chain_txs, ctx.now().as_nanos());
        self.last_proposed_height = block.header.height;
        let outs = {
            let replica = self.final_replica.as_mut().expect("checked in caller");
            match replica.propose(BlockPayload(Some(block))) {
                Ok(outs) => outs,
                Err(_) => return,
            }
        };
        self.route_final(ctx, outs);
        self.pump_final(ctx);
    }

    /// Post-processing after final-replica interaction.
    fn pump_final(&mut self, ctx: &mut Context<'_, CurbMsg>) {
        let decided: Vec<BlockPayload> = match &mut self.final_replica {
            Some(r) => r.take_decisions().into_iter().map(|(_, p)| p).collect(),
            None => return,
        };
        for payload in decided {
            let Some(block) = payload.0 else {
                continue; // view-change no-op
            };
            self.accept_block(ctx, block.clone());
            // Announce to every controller (Algorithm 3 line 25).
            for c in 0..self.shared.plan.n_controllers {
                if c != self.id {
                    self.send(
                        ctx,
                        self.controller_node(c),
                        CurbMsg::FinalAgree {
                            block: block.clone(),
                        },
                    );
                }
            }
        }
        // A new final leader (after a view change) may have buffered
        // lists to cut.
        self.maybe_cut_block(ctx, false);
    }

    /// `FINAL-AGREE` handling at every controller: append after `f + 1`
    /// matching announcements from committee members. Committee members
    /// normally append on their own decision, but this path also lets a
    /// member that missed a decision (e.g. across a round boundary)
    /// catch up instead of falling behind for good.
    fn on_final_agree(&mut self, ctx: &mut Context<'_, CurbMsg>, from: usize, block: Block) {
        if !self.epoch.final_com.contains(&from) {
            return;
        }
        let hash = block.hash();
        if block.header.height <= self.chain.height() {
            return; // already have it
        }
        let entry = self
            .final_agree_votes
            .entry(hash)
            .or_insert_with(|| (block, BTreeSet::new()));
        entry.1.insert(from);
        if entry.1.len() > self.shared.config.f {
            let (block, _) = self.final_agree_votes.remove(&hash).expect("entry exists");
            self.pending_blocks.insert(block.header.height, block);
            self.drain_pending_blocks(ctx);
        }
    }

    fn drain_pending_blocks(&mut self, ctx: &mut Context<'_, CurbMsg>) {
        while let Some(block) = self.pending_blocks.remove(&(self.chain.height() + 1)) {
            self.accept_block(ctx, block);
        }
    }

    /// Validates and appends a block, then replies to governed switches
    /// (Algorithm 3 lines 26-31).
    fn accept_block(&mut self, ctx: &mut Context<'_, CurbMsg>, block: Block) {
        let protos: Vec<ProtoTx> = block
            .txs
            .iter()
            .filter_map(ProtoTx::from_chain_tx)
            .collect();
        if self.chain.append(block).is_err() {
            return;
        }
        self.settle_txs(ctx, &protos);
    }

    /// Marks transactions committed and replies to the switches this
    /// controller governs.
    fn settle_txs(&mut self, ctx: &mut Context<'_, CurbMsg>, txs: &[ProtoTx]) {
        for tx in txs {
            let key = tx.record.key;
            self.committed.insert(key);
            if let ReqKind::ReAss { accused } = &tx.record.kind {
                self.accused_on_chain.extend(accused.iter().copied());
            }
            for state in self.groups.values_mut() {
                state.pending.retain(|r| r.key != key);
                state.intra_done.remove(&key);
                state.proposed.remove(&key);
            }
            if self.epoch.ctrl_list(key.switch).contains(&self.id) {
                self.send(
                    ctx,
                    self.switch_node(key.switch),
                    CurbMsg::Reply {
                        controller: self.id,
                        key,
                        config: tx.config.clone(),
                    },
                );
            }
        }
    }
}

impl Actor<CurbMsg> for ControllerActor {
    fn on_message(&mut self, ctx: &mut Context<'_, CurbMsg>, from: NodeId, msg: CurbMsg) {
        if self.behavior == ControllerBehavior::Silent {
            return;
        }
        match msg {
            CurbMsg::Request(req) => self.on_request(ctx, req),
            CurbMsg::IntraPbft { group, msg } => {
                let sender = match self.shared.plan.entity(from) {
                    crate::ids::Entity::Controller(c) => c.0,
                    crate::ids::Entity::Switch(_) => return,
                };
                let gid = group.0;
                let outs = {
                    let Some(state) = self.groups.get_mut(&gid) else {
                        return;
                    };
                    let Some(idx) = state.members.iter().position(|&m| m == sender) else {
                        return;
                    };
                    if idx == state.my_index() {
                        return;
                    }
                    state.replica.on_message(idx, msg)
                };
                self.route_group(ctx, gid, outs);
                self.pump_group(ctx, gid);
            }
            CurbMsg::Agree { group, txs } => {
                let sender = match self.shared.plan.entity(from) {
                    crate::ids::Entity::Controller(c) => c.0,
                    crate::ids::Entity::Switch(_) => return,
                };
                self.on_agree(ctx, sender, group, txs);
            }
            CurbMsg::FinalPbft { msg } => {
                let sender = match self.shared.plan.entity(from) {
                    crate::ids::Entity::Controller(c) => c.0,
                    crate::ids::Entity::Switch(_) => return,
                };
                let outs = {
                    let Some(idx) = self.epoch.final_replica_index(sender) else {
                        return;
                    };
                    let Some(replica) = &mut self.final_replica else {
                        return;
                    };
                    replica.on_message(idx, msg)
                };
                self.route_final(ctx, outs);
                self.pump_final(ctx);
            }
            CurbMsg::FinalAgree { block } => {
                let sender = match self.shared.plan.entity(from) {
                    crate::ids::Entity::Controller(c) => c.0,
                    crate::ids::Entity::Switch(_) => return,
                };
                self.on_final_agree(ctx, sender, block);
            }
            CurbMsg::HostPacket { .. }
            | CurbMsg::Reply { .. }
            | CurbMsg::TriggerReassign { .. } => {
                // Not addressed to controllers; ignore.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CurbMsg>, tag: TimerTag) {
        if self.behavior == ControllerBehavior::Silent {
            return;
        }
        match tag & TAG_MASK {
            TAG_BATCH => self.on_batch_timer(ctx, (tag & !TAG_MASK) as usize),
            TAG_PROPOSE => self.on_propose_timer(ctx, (tag & !TAG_MASK) as usize),
            TAG_WATCH => self.on_watch_timer(ctx, tag & !TAG_MASK),
            TAG_BLOCK => {
                self.block_timer_set = false;
                self.maybe_cut_block(ctx, true);
            }
            _ => {}
        }
    }
}

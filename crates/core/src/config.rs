//! Protocol configuration.

use core::time::Duration;
use curb_assign::Objective;
use curb_consensus::CoreKind;

/// How the control plane is organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneMode {
    /// The Curb group-based control plane (the paper's contribution):
    /// intra-group consensus per controller group plus a final
    /// committee.
    Grouped {
        /// Pipelined mode: the final committee cuts a block as soon as a
        /// group's transaction list is certified, letting final
        /// consensus overlap other groups' intra-group consensus.
        /// Non-parallel mode waits for every active group's list before
        /// cutting one block per round (Fig. 4(c)).
        parallel: bool,
    },
    /// Flat BFT baseline (SimpleBFT/BeaconBFT-style, reference \[1\] of
    /// the paper): all `N` controllers form one PBFT quorum and every
    /// switch is governed by all of them. Used by the message-complexity
    /// comparison of Theorem 1.
    Flat,
}

/// Configuration of a [`crate::CurbNetwork`] simulation.
///
/// Defaults mirror the paper's evaluation setup: `f = 1` (groups of 4),
/// 500 ms timeout, 5-round lazy patience, TCR reassignment, parallel
/// pipeline off.
#[derive(Debug, Clone, PartialEq)]
pub struct CurbConfig {
    /// Per-group byzantine tolerance `f`; group size is `3f + 1`.
    pub f: usize,
    /// Request timeout (paper: 500 ms). A controller that has not
    /// replied by then earns a miss strike; an unserved request is
    /// retried and the group's followers start a view change.
    pub timeout: Duration,
    /// Consecutive miss strikes before a switch accuses a controller in
    /// a RE-ASS request (Fig. 4(a): detection in round 5).
    pub suspect_threshold: u32,
    /// Rounds a "lazy" (slow but in-time) controller is tolerated
    /// before being treated as byzantine (paper: 5).
    pub lazy_patience: u32,
    /// Replies arriving this long after quorum formation earn a lazy
    /// strike.
    pub lazy_margin: Duration,
    /// Control-plane organisation.
    pub mode: PlaneMode,
    /// The BFT engine both consensus stages run: PBFT (the paper's
    /// choice) or HotStuff (its named alternative, with linear message
    /// complexity per group).
    pub consensus_core: CoreKind,
    /// `D_c,s` threshold in ms for the OP solver.
    pub max_cs_delay_ms: f64,
    /// `D_c,c` threshold in ms; `None` drops C1.4/C2.4 (the paper's
    /// default in all protocol experiments).
    pub max_cc_delay_ms: Option<f64>,
    /// Objective used when a RE-ASS triggers the OP solver.
    pub reassign_objective: Objective,
    /// Pin current group leaders during reassignment (constraint C2.6).
    pub pin_leaders: bool,
    /// Per-controller load capacity `C_j`, in switches. The paper's
    /// Internet2 setup needs 16 controllers for 34 switches, i.e. a
    /// capacity that forces several controller groups.
    pub controller_capacity: u32,
    /// Message service time of a controller: per-message processing
    /// cost including signature verification (the paper's Ryu/Python
    /// controllers pay ~ms per message; 250 µs models a faster native
    /// stack). Creates queueing, so latency grows with load and group
    /// size — the paper's Fig. 5 trends.
    pub controller_service: Duration,
    /// Message service time of a switch.
    pub switch_service: Duration,
    /// Leader batch window: after the first buffered request the leader
    /// waits this long to batch more before launching Intra-PBFT.
    pub batch_window: Duration,
    /// Non-parallel pipeline only: how long the final-committee leader
    /// waits for the remaining groups' transaction lists before cutting
    /// a partial block anyway. Parallel mode cuts immediately.
    pub block_window: Duration,
    /// Fresh flows injected per switch per round (1 everywhere in the
    /// paper except the saturation/parallel comparisons).
    pub requests_per_switch: usize,
    /// Injection is staggered uniformly over this window at the start
    /// of each round ([`Duration::ZERO`] = all at once).
    pub inject_window: Duration,
    /// Master seed for key generation, workloads and tie-breaking.
    pub seed: u64,
    /// Require signatures on requests/transactions (slower but
    /// exercises the crypto path end to end).
    pub sign_requests: bool,
}

impl Default for CurbConfig {
    fn default() -> Self {
        CurbConfig {
            f: 1,
            timeout: Duration::from_millis(500),
            suspect_threshold: 5,
            lazy_patience: 5,
            lazy_margin: Duration::from_millis(300),
            mode: PlaneMode::Grouped { parallel: false },
            consensus_core: CoreKind::Pbft,
            max_cs_delay_ms: 30.0,
            max_cc_delay_ms: None,
            reassign_objective: Objective::Tcr,
            pin_leaders: false,
            controller_capacity: 11,
            controller_service: Duration::from_micros(250),
            switch_service: Duration::from_micros(50),
            batch_window: Duration::from_millis(20),
            block_window: Duration::from_millis(400),
            requests_per_switch: 1,
            inject_window: Duration::ZERO,
            seed: 0xC0FFEE,
            sign_requests: false,
        }
    }
}

impl CurbConfig {
    /// Group size `3f + 1`.
    pub fn group_size(&self) -> usize {
        3 * self.f + 1
    }

    /// Returns a copy with the parallel pipeline enabled/disabled
    /// (builder style).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.mode = PlaneMode::Grouped { parallel };
        self
    }

    /// Returns a copy configured as the flat-BFT baseline.
    pub fn flat(mut self) -> Self {
        self.mode = PlaneMode::Flat;
        self
    }

    /// Returns a copy with a different `f` (builder style).
    pub fn with_f(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Returns a copy with a different seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy running the given consensus engine (builder
    /// style).
    pub fn with_core(mut self, core: CoreKind) -> Self {
        self.consensus_core = core;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CurbConfig::default();
        assert_eq!(c.f, 1);
        assert_eq!(c.group_size(), 4);
        assert_eq!(c.timeout, Duration::from_millis(500));
        assert_eq!(c.lazy_patience, 5);
        assert_eq!(c.mode, PlaneMode::Grouped { parallel: false });
    }

    #[test]
    fn builders() {
        let c = CurbConfig::default()
            .with_f(4)
            .with_parallel(true)
            .with_seed(9);
        assert_eq!(c.group_size(), 13);
        assert_eq!(c.mode, PlaneMode::Grouped { parallel: true });
        assert_eq!(c.seed, 9);
        assert_eq!(CurbConfig::default().flat().mode, PlaneMode::Flat);
        assert_eq!(
            CurbConfig::default()
                .with_core(CoreKind::HotStuff)
                .consensus_core,
            CoreKind::HotStuff
        );
    }
}

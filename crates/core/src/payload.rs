//! Protocol payloads: requests, configurations, transactions, and the
//! two consensus payload types (transaction lists and blocks).

use crate::ids::SwitchId;
use curb_chain::{Block, BlockHeader, RequestKind, Transaction};
use curb_consensus::{Payload, PayloadCodec};
use curb_crypto::sha256::{digest_parts, Digest};
use curb_crypto::{PublicKey, Signature};

/// Uniquely identifies a request: issuing switch plus its local
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestKey {
    /// Issuing switch.
    pub switch: SwitchId,
    /// Switch-local sequence number.
    pub seq: u64,
}

/// What a request asks for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// `PKT-IN`: the switch needs flow entries for packets to `dst_host`.
    PktIn {
        /// Destination host the table-missed packet was addressed to.
        dst_host: u32,
    },
    /// `RE-ASS`: the switch accuses controllers of byzantine behaviour
    /// and requests a reassignment.
    ReAss {
        /// Accused controller indices.
        accused: Vec<usize>,
    },
}

impl ReqKind {
    /// The blockchain-level request kind.
    pub fn chain_kind(&self) -> RequestKind {
        match self {
            ReqKind::PktIn { .. } => RequestKind::PacketIn,
            ReqKind::ReAss { .. } => RequestKind::Reassign,
        }
    }
}

/// A request as stored and deduplicated by controllers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestRecord {
    /// Unique key (dedup handle, `⟨·, reqMsg, s, c, ·⟩ ∈ reqBuffer`).
    pub key: RequestKey,
    /// The request content.
    pub kind: ReqKind,
}

/// Reads a big-endian integer from the front of `buf`, advancing it.
fn take<const N: usize>(buf: &mut &[u8]) -> Option<[u8; N]> {
    if buf.len() < N {
        return None;
    }
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    head.try_into().ok()
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    take::<8>(buf).map(u64::from_be_bytes)
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    take::<4>(buf).map(u32::from_be_bytes)
}

fn take_u16(buf: &mut &[u8]) -> Option<u16> {
    take::<2>(buf).map(u16::from_be_bytes)
}

fn take_u8(buf: &mut &[u8]) -> Option<u8> {
    take::<1>(buf).map(|b| b[0])
}

impl RequestRecord {
    /// Canonical, self-delimiting bytes; also what the switch signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.key.switch.0 as u64).to_be_bytes());
        out.extend_from_slice(&self.key.seq.to_be_bytes());
        match &self.kind {
            ReqKind::PktIn { dst_host } => {
                out.push(0);
                out.extend_from_slice(&dst_host.to_be_bytes());
            }
            ReqKind::ReAss { accused } => {
                out.push(1);
                out.extend_from_slice(&(accused.len() as u32).to_be_bytes());
                for a in accused {
                    out.extend_from_slice(&(*a as u64).to_be_bytes());
                }
            }
        }
        out
    }

    /// Parses a record from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> Option<RequestRecord> {
        let switch = take_u64(buf)? as usize;
        let seq = take_u64(buf)?;
        let kind = match take_u8(buf)? {
            0 => ReqKind::PktIn {
                dst_host: take_u32(buf)?,
            },
            1 => {
                let n = take_u32(buf)? as usize;
                if n > 1_000_000 {
                    return None;
                }
                let mut accused = Vec::with_capacity(n);
                for _ in 0..n {
                    accused.push(take_u64(buf)? as usize);
                }
                ReqKind::ReAss { accused }
            }
            _ => return None,
        };
        Some(RequestRecord {
            key: RequestKey {
                switch: SwitchId(switch),
                seq,
            },
            kind,
        })
    }
}

/// A request plus its (optional) signature, as sent on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedRequest {
    /// The request.
    pub record: RequestRecord,
    /// Signature by the issuing switch, when request signing is on.
    pub signature: Option<(PublicKey, Signature)>,
}

impl SignedRequest {
    /// Verifies the signature if present (unsigned requests pass).
    pub fn verify(&self) -> bool {
        match &self.signature {
            Some((pk, sig)) => pk.verify(&self.record.signing_bytes(), sig),
            None => true,
        }
    }
}

/// One installable flow rule, in serialisable form (the `config` of a
/// PKT-IN transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowRuleSpec {
    /// Rule priority.
    pub priority: u16,
    /// Destination host the rule matches.
    pub dst_host: u32,
    /// Egress port to forward matching packets to.
    pub out_port: u16,
}

/// The configuration a controller computes for a request
/// (`ComputeConfig` in Algorithm 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConfigData {
    /// New flow entries for the requesting switch.
    FlowRules(Vec<FlowRuleSpec>),
    /// A full controller-assignment: `groups[i]` is switch `i`'s new
    /// controller list.
    NewAssignment {
        /// Per-switch controller groups.
        groups: Vec<Vec<usize>>,
    },
}

impl ConfigData {
    /// Canonical byte encoding (recorded in blockchain transactions).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ConfigData::FlowRules(rules) => {
                out.push(0);
                out.extend_from_slice(&(rules.len() as u32).to_be_bytes());
                for r in rules {
                    out.extend_from_slice(&r.priority.to_be_bytes());
                    out.extend_from_slice(&r.dst_host.to_be_bytes());
                    out.extend_from_slice(&r.out_port.to_be_bytes());
                }
            }
            ConfigData::NewAssignment { groups } => {
                out.push(1);
                out.extend_from_slice(&(groups.len() as u32).to_be_bytes());
                for g in groups {
                    out.extend_from_slice(&(g.len() as u32).to_be_bytes());
                    for &j in g {
                        out.extend_from_slice(&(j as u32).to_be_bytes());
                    }
                }
            }
        }
        out
    }

    /// Parses a configuration from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> Option<ConfigData> {
        match take_u8(buf)? {
            0 => {
                let n = take_u32(buf)? as usize;
                if n > 1_000_000 {
                    return None;
                }
                let mut rules = Vec::with_capacity(n);
                for _ in 0..n {
                    rules.push(FlowRuleSpec {
                        priority: take_u16(buf)?,
                        dst_host: take_u32(buf)?,
                        out_port: take_u16(buf)?,
                    });
                }
                Some(ConfigData::FlowRules(rules))
            }
            1 => {
                let n = take_u32(buf)? as usize;
                if n > 1_000_000 {
                    return None;
                }
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = take_u32(buf)? as usize;
                    if k > 1_000_000 {
                        return None;
                    }
                    let mut g = Vec::with_capacity(k);
                    for _ in 0..k {
                        g.push(take_u32(buf)? as usize);
                    }
                    groups.push(g);
                }
                Some(ConfigData::NewAssignment { groups })
            }
            _ => None,
        }
    }

    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

/// One protocol transaction: a handled request with its computed
/// configuration (`⟨TX, reqMsg, s, c, config⟩`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProtoTx {
    /// The handled request.
    pub record: RequestRecord,
    /// The controller that handled it (the group leader).
    pub handled_by: usize,
    /// The computed configuration.
    pub config: ConfigData,
}

impl ProtoTx {
    /// Canonical, self-delimiting bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.record.signing_bytes();
        out.extend_from_slice(&(self.handled_by as u64).to_be_bytes());
        out.extend_from_slice(&self.config.encode());
        out
    }

    /// Parses a protocol transaction back from [`ProtoTx::encode`]
    /// output.
    pub fn decode(bytes: &[u8]) -> Option<ProtoTx> {
        let mut buf = bytes;
        let record = RequestRecord::decode(&mut buf)?;
        let handled_by = take_u64(&mut buf)? as usize;
        let config = ConfigData::decode(&mut buf)?;
        if !buf.is_empty() {
            return None;
        }
        Some(ProtoTx {
            record,
            handled_by,
            config,
        })
    }

    /// Converts to a blockchain transaction; the full protocol
    /// transaction is recorded as the chain transaction's config bytes,
    /// so it can be reconstructed with [`ProtoTx::from_chain_tx`].
    pub fn to_chain_tx(&self) -> Transaction {
        Transaction::new(
            self.record.kind.chain_kind(),
            self.record.key.switch.0 as u64,
            self.handled_by as u64,
            self.encode(),
        )
    }

    /// Reconstructs the protocol transaction from a chain transaction
    /// produced by [`ProtoTx::to_chain_tx`]. Returns `None` for foreign
    /// transactions (e.g. the genesis init record).
    pub fn from_chain_tx(tx: &Transaction) -> Option<ProtoTx> {
        if tx.kind == RequestKind::Init {
            return None;
        }
        ProtoTx::decode(&tx.config)
    }
}

/// The intra-group consensus payload: an ordered transaction list
/// (`txList` in Algorithm 3). The [`Default`] empty list serves as the
/// view-change no-op.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxListPayload(pub Vec<ProtoTx>);

impl Payload for TxListPayload {
    fn digest(&self) -> Digest {
        let encoded: Vec<Vec<u8>> = self.0.iter().map(ProtoTx::encode).collect();
        let parts: Vec<&[u8]> = std::iter::once(&b"curb-txlist"[..])
            .chain(encoded.iter().map(Vec::as_slice))
            .collect();
        digest_parts(&parts)
    }

    fn wire_size(&self) -> usize {
        16 + self.0.iter().map(|t| t.encode().len()).sum::<usize>()
    }
}

/// The final consensus payload: a proposed block. The [`Default`]
/// (`None`) is the view-change no-op.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockPayload(pub Option<Block>);

impl Payload for BlockPayload {
    fn digest(&self) -> Digest {
        match &self.0 {
            Some(b) => b.hash(),
            None => digest_parts(&[b"curb-empty-block"]),
        }
    }

    fn wire_size(&self) -> usize {
        match &self.0 {
            Some(b) => b.wire_size(),
            None => 16,
        }
    }
}

/// Cap on list lengths decoded from the wire, so a hostile count can
/// never trigger a huge allocation before the bytes run out.
const MAX_WIRE_ITEMS: u32 = 1 << 20;

fn put_len_prefixed(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn take_len_prefixed<'a>(buf: &mut &'a [u8]) -> Option<&'a [u8]> {
    let len = take_u32(buf)? as usize;
    if buf.len() < len {
        return None;
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Some(head)
}

impl PayloadCodec for TxListPayload {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.0.len() as u32).to_be_bytes());
        for tx in &self.0 {
            put_len_prefixed(out, &tx.encode());
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let mut buf = bytes;
        let n = take_u32(&mut buf)?;
        if n > MAX_WIRE_ITEMS {
            return None;
        }
        let mut txs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            txs.push(ProtoTx::decode(take_len_prefixed(&mut buf)?)?);
        }
        if !buf.is_empty() {
            return None;
        }
        Some(TxListPayload(txs))
    }
}

fn encode_chain_tx(out: &mut Vec<u8>, tx: &Transaction) {
    out.push(match tx.kind {
        RequestKind::PacketIn => 0,
        RequestKind::Reassign => 1,
        RequestKind::Init => 2,
    });
    out.extend_from_slice(&tx.switch.to_be_bytes());
    out.extend_from_slice(&tx.controller.to_be_bytes());
    put_len_prefixed(out, &tx.config);
    match &tx.signature {
        None => out.push(0),
        Some((pk, sig)) => {
            out.push(1);
            out.extend_from_slice(&pk.to_bytes());
            out.extend_from_slice(&sig.to_bytes());
        }
    }
}

fn decode_chain_tx(buf: &mut &[u8]) -> Option<Transaction> {
    let kind = match take_u8(buf)? {
        0 => RequestKind::PacketIn,
        1 => RequestKind::Reassign,
        2 => RequestKind::Init,
        _ => return None,
    };
    let switch = take_u64(buf)?;
    let controller = take_u64(buf)?;
    let config = take_len_prefixed(buf)?.to_vec();
    let mut tx = Transaction::new(kind, switch, controller, config);
    match take_u8(buf)? {
        0 => {}
        1 => {
            let pk = take::<32>(buf)?;
            let sig = take::<64>(buf)?;
            tx.signature = Some((PublicKey::from_bytes(&pk), Signature::from_bytes(&sig)));
        }
        _ => return None,
    }
    Some(tx)
}

/// Appends a full block (header plus transaction body) to `out`. The
/// inverse of [`decode_block`]; used by [`BlockPayload`]'s wire codec.
pub fn encode_block(out: &mut Vec<u8>, block: &Block) {
    out.extend_from_slice(&block.header.height.to_be_bytes());
    out.extend_from_slice(&block.header.prev_hash.0);
    out.extend_from_slice(&block.header.merkle_root.0);
    out.extend_from_slice(&block.header.timestamp_ns.to_be_bytes());
    out.extend_from_slice(&(block.txs.len() as u32).to_be_bytes());
    for tx in &block.txs {
        encode_chain_tx(out, tx);
    }
}

/// Parses a block from the front of `buf`, advancing it. Returns
/// `None` on malformed input or if the body does not match the
/// header's Merkle commitment — a decoded block is always internally
/// consistent.
pub fn decode_block(buf: &mut &[u8]) -> Option<Block> {
    let height = take_u64(buf)?;
    let prev_hash = Digest(take::<32>(buf)?);
    let merkle_root = Digest(take::<32>(buf)?);
    let timestamp_ns = take_u64(buf)?;
    let n = take_u32(buf)?;
    if n > MAX_WIRE_ITEMS {
        return None;
    }
    let mut txs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        txs.push(decode_chain_tx(buf)?);
    }
    let block = Block {
        header: BlockHeader {
            height,
            prev_hash,
            merkle_root,
            timestamp_ns,
        },
        txs,
    };
    if !block.body_matches_header() {
        return None;
    }
    Some(block)
}

impl PayloadCodec for BlockPayload {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match &self.0 {
            None => out.push(0),
            Some(block) => {
                out.push(1);
                encode_block(out, block);
            }
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let mut buf = bytes;
        let inner = match take_u8(&mut buf)? {
            0 => None,
            1 => Some(decode_block(&mut buf)?),
            _ => return None,
        };
        if !buf.is_empty() {
            return None;
        }
        Some(BlockPayload(inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_crypto::rng::DetRng;
    use curb_crypto::KeyPair;

    fn record(seq: u64) -> RequestRecord {
        RequestRecord {
            key: RequestKey {
                switch: SwitchId(3),
                seq,
            },
            kind: ReqKind::PktIn { dst_host: 77 },
        }
    }

    #[test]
    fn signed_request_verification() {
        let mut rng = DetRng::new(5);
        let keys = KeyPair::generate(&mut rng);
        let rec = record(1);
        let sig = keys.sign(&rec.signing_bytes(), &mut rng);
        let ok = SignedRequest {
            record: rec.clone(),
            signature: Some((keys.public(), sig)),
        };
        assert!(ok.verify());
        let mut tampered = ok.clone();
        tampered.record.key.seq = 2;
        assert!(!tampered.verify());
        let unsigned = SignedRequest {
            record: rec,
            signature: None,
        };
        assert!(unsigned.verify());
    }

    #[test]
    fn config_encoding_distinguishes_variants() {
        let flow = ConfigData::FlowRules(vec![FlowRuleSpec {
            priority: 10,
            dst_host: 7,
            out_port: 2,
        }]);
        let assign = ConfigData::NewAssignment {
            groups: vec![vec![0, 1]],
        };
        assert_ne!(flow.encode(), assign.encode());
        assert_eq!(flow.encode(), flow.clone().encode());
        assert!(flow.wire_size() > 0);
    }

    #[test]
    fn config_encoding_is_injective_on_rules() {
        let a = ConfigData::FlowRules(vec![FlowRuleSpec {
            priority: 1,
            dst_host: 2,
            out_port: 3,
        }]);
        let b = ConfigData::FlowRules(vec![FlowRuleSpec {
            priority: 1,
            dst_host: 2,
            out_port: 4,
        }]);
        assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn txlist_digest_depends_on_content_and_order() {
        let tx1 = ProtoTx {
            record: record(1),
            handled_by: 0,
            config: ConfigData::FlowRules(vec![]),
        };
        let tx2 = ProtoTx {
            record: record(2),
            handled_by: 0,
            config: ConfigData::FlowRules(vec![]),
        };
        let ab = TxListPayload(vec![tx1.clone(), tx2.clone()]);
        let ba = TxListPayload(vec![tx2, tx1]);
        assert_ne!(ab.digest(), ba.digest());
        assert_ne!(ab.digest(), TxListPayload::default().digest());
    }

    #[test]
    fn chain_tx_roundtrip_fields() {
        let tx = ProtoTx {
            record: record(9),
            handled_by: 4,
            config: ConfigData::FlowRules(vec![]),
        };
        let chain_tx = tx.to_chain_tx();
        assert_eq!(chain_tx.switch, 3);
        assert_eq!(chain_tx.controller, 4);
        assert_eq!(chain_tx.kind, RequestKind::PacketIn);
        // Distinct request seqs yield distinct chain transactions even
        // with identical configs.
        let tx2 = ProtoTx {
            record: record(10),
            handled_by: 4,
            config: ConfigData::FlowRules(vec![]),
        };
        assert_ne!(chain_tx.id(), tx2.to_chain_tx().id());
    }

    #[test]
    fn block_payload_digests() {
        let none = BlockPayload::default();
        let block = BlockPayload(Some(Block::genesis(b"x")));
        assert_ne!(none.digest(), block.digest());
        assert!(none.wire_size() < block.wire_size());
    }

    #[test]
    fn proto_tx_roundtrips_through_chain() {
        for kind in [
            ReqKind::PktIn { dst_host: 123 },
            ReqKind::ReAss {
                accused: vec![1, 5, 9],
            },
            ReqKind::ReAss { accused: vec![] },
        ] {
            let tx = ProtoTx {
                record: RequestRecord {
                    key: RequestKey {
                        switch: SwitchId(7),
                        seq: 42,
                    },
                    kind,
                },
                handled_by: 3,
                config: ConfigData::NewAssignment {
                    groups: vec![vec![0, 2], vec![], vec![1]],
                },
            };
            let chain_tx = tx.to_chain_tx();
            assert_eq!(ProtoTx::from_chain_tx(&chain_tx), Some(tx.clone()));
            assert_eq!(ProtoTx::decode(&tx.encode()), Some(tx));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ProtoTx::decode(&[]), None);
        assert_eq!(ProtoTx::decode(&[0xFF; 7]), None);
        let valid = ProtoTx {
            record: record(1),
            handled_by: 0,
            config: ConfigData::FlowRules(vec![]),
        }
        .encode();
        // Trailing garbage is rejected.
        let mut padded = valid.clone();
        padded.push(0);
        assert_eq!(ProtoTx::decode(&padded), None);
        // Truncation is rejected.
        assert_eq!(ProtoTx::decode(&valid[..valid.len() - 1]), None);
    }

    #[test]
    fn genesis_tx_is_not_a_proto_tx() {
        let genesis_tx = curb_chain::Transaction::new(RequestKind::Init, 0, 0, vec![1, 2, 3]);
        assert_eq!(ProtoTx::from_chain_tx(&genesis_tx), None);
    }

    #[test]
    fn config_decode_roundtrip() {
        let configs = vec![
            ConfigData::FlowRules(vec![
                FlowRuleSpec {
                    priority: 1,
                    dst_host: 2,
                    out_port: 3,
                },
                FlowRuleSpec {
                    priority: 9,
                    dst_host: 8,
                    out_port: 7,
                },
            ]),
            ConfigData::FlowRules(vec![]),
            ConfigData::NewAssignment {
                groups: vec![vec![5; 3]; 2],
            },
        ];
        for c in configs {
            let bytes = c.encode();
            let mut buf = bytes.as_slice();
            assert_eq!(ConfigData::decode(&mut buf), Some(c));
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn txlist_payload_wire_roundtrip() {
        let list = TxListPayload(vec![
            ProtoTx {
                record: record(1),
                handled_by: 2,
                config: ConfigData::FlowRules(vec![FlowRuleSpec {
                    priority: 10,
                    dst_host: 7,
                    out_port: 2,
                }]),
            },
            ProtoTx {
                record: RequestRecord {
                    key: RequestKey {
                        switch: SwitchId(4),
                        seq: 9,
                    },
                    kind: ReqKind::ReAss {
                        accused: vec![1, 5],
                    },
                },
                handled_by: 0,
                config: ConfigData::NewAssignment {
                    groups: vec![vec![0, 1, 2]],
                },
            },
        ]);
        let mut bytes = Vec::new();
        list.encode_payload(&mut bytes);
        assert_eq!(TxListPayload::decode_payload(&bytes), Some(list));
        // Trailing garbage and truncation are rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(TxListPayload::decode_payload(&padded), None);
        assert_eq!(
            TxListPayload::decode_payload(&bytes[..bytes.len() - 1]),
            None
        );
    }

    #[test]
    fn block_payload_wire_roundtrip() {
        use curb_chain::Block;
        let genesis = Block::genesis(b"init");
        let tx = ProtoTx {
            record: record(3),
            handled_by: 1,
            config: ConfigData::FlowRules(vec![]),
        }
        .to_chain_tx();
        let mut signed_tx = tx.clone();
        let mut rng = curb_crypto::rng::DetRng::new(7);
        let keys = KeyPair::generate(&mut rng);
        signed_tx.sign(&keys, &mut rng);
        let block = Block::next(&genesis, vec![tx, signed_tx], 42);

        for payload in [BlockPayload(None), BlockPayload(Some(block.clone()))] {
            let mut bytes = Vec::new();
            payload.encode_payload(&mut bytes);
            assert_eq!(BlockPayload::decode_payload(&bytes), Some(payload));
        }
    }

    #[test]
    fn tampered_block_body_fails_decode() {
        use curb_chain::Block;
        let genesis = Block::genesis(b"init");
        let tx = ProtoTx {
            record: record(3),
            handled_by: 1,
            config: ConfigData::FlowRules(vec![]),
        }
        .to_chain_tx();
        let block = Block::next(&genesis, vec![tx], 42);
        let mut bytes = Vec::new();
        BlockPayload(Some(block)).encode_payload(&mut bytes);
        // Flip one byte of the transaction body: the Merkle commitment
        // in the header no longer matches, so decode must refuse.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_eq!(BlockPayload::decode_payload(&bytes), None);
        // Hostile random bytes never panic.
        assert_eq!(BlockPayload::decode_payload(&[9, 9, 9]), None);
        assert_eq!(BlockPayload::decode_payload(&[]), None);
    }

    #[test]
    fn reass_signing_bytes_cover_accused() {
        let a = RequestRecord {
            key: RequestKey {
                switch: SwitchId(1),
                seq: 1,
            },
            kind: ReqKind::ReAss { accused: vec![3] },
        };
        let b = RequestRecord {
            key: RequestKey {
                switch: SwitchId(1),
                seq: 1,
            },
            kind: ReqKind::ReAss { accused: vec![4] },
        };
        assert_ne!(a.signing_bytes(), b.signing_bytes());
    }
}

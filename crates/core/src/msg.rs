//! The wire messages of the Curb protocol.

use crate::ids::GroupId;
use crate::payload::{BlockPayload, ConfigData, RequestKey, SignedRequest, TxListPayload};
use curb_chain::Block;
use curb_consensus::{CoreMsg, Payload};
use curb_sdn::Packet;
use curb_sim::Message;

/// Everything that travels through the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub enum CurbMsg {
    /// A host hands a packet to its edge switch (zero-delay self-post;
    /// models the host-switch access link).
    HostPacket {
        /// The data packet.
        packet: Packet,
    },
    /// Step 1: a switch broadcasts a request to its controller group.
    Request(SignedRequest),
    /// Step 3→4: a controller replies with the agreed configuration.
    Reply {
        /// Replying controller.
        controller: usize,
        /// Request being answered.
        key: RequestKey,
        /// The agreed configuration.
        config: ConfigData,
    },
    /// Step 2: intra-group consensus traffic (PBFT or HotStuff,
    /// depending on the configured engine).
    IntraPbft {
        /// The group the instance belongs to.
        group: GroupId,
        /// The consensus message.
        msg: CoreMsg<TxListPayload>,
    },
    /// Step 2→3: a group member certifies its group's transaction list
    /// to the final committee.
    Agree {
        /// Originating group.
        group: GroupId,
        /// The agreed transaction list.
        txs: TxListPayload,
    },
    /// Step 3: final-committee consensus traffic.
    FinalPbft {
        /// The consensus message.
        msg: CoreMsg<BlockPayload>,
    },
    /// Step 3→4: a final-committee member announces the decided block
    /// to all controllers.
    FinalAgree {
        /// The decided block.
        block: Block,
    },
    /// Harness-only: instructs a switch to issue a `RE-ASS` request
    /// (drives the paper's Fig. 9 reassignment workload).
    TriggerReassign {
        /// Controllers to accuse (may be empty for a no-op
        /// reassignment that still exercises the full OP + consensus
        /// path).
        accused: Vec<usize>,
    },
}

impl Message for CurbMsg {
    fn size_bytes(&self) -> usize {
        match self {
            CurbMsg::HostPacket { packet } => packet.wire_size(),
            CurbMsg::Request(req) => {
                64 + req.record.signing_bytes().len() + if req.signature.is_some() { 96 } else { 0 }
            }
            CurbMsg::Reply { config, .. } => 48 + config.wire_size(),
            CurbMsg::IntraPbft { msg, .. } => 8 + msg.wire_size(),
            CurbMsg::Agree { txs, .. } => 8 + txs.wire_size(),
            CurbMsg::FinalPbft { msg } => msg.wire_size(),
            CurbMsg::FinalAgree { block } => block.wire_size(),
            CurbMsg::TriggerReassign { accused } => 8 + 8 * accused.len(),
        }
    }

    fn category(&self) -> &'static str {
        match self {
            CurbMsg::HostPacket { .. } => "HOST-PKT",
            CurbMsg::Request(req) => match req.record.kind {
                crate::payload::ReqKind::PktIn { .. } => "PKT-IN",
                crate::payload::ReqKind::ReAss { .. } => "RE-ASS",
            },
            CurbMsg::Reply { .. } => "REPLY",
            CurbMsg::IntraPbft { .. } => "INTRA-PBFT",
            CurbMsg::Agree { .. } => "AGREE",
            CurbMsg::FinalPbft { .. } => "FINAL-PBFT",
            CurbMsg::FinalAgree { .. } => "FINAL-AGREE",
            CurbMsg::TriggerReassign { .. } => "TRIGGER",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SwitchId;
    use crate::payload::{ReqKind, RequestRecord};
    use curb_sdn::HostId;

    fn request(kind: ReqKind) -> CurbMsg {
        CurbMsg::Request(SignedRequest {
            record: RequestRecord {
                key: RequestKey {
                    switch: SwitchId(0),
                    seq: 1,
                },
                kind,
            },
            signature: None,
        })
    }

    #[test]
    fn categories_follow_request_kind() {
        assert_eq!(request(ReqKind::PktIn { dst_host: 1 }).category(), "PKT-IN");
        assert_eq!(
            request(ReqKind::ReAss { accused: vec![2] }).category(),
            "RE-ASS"
        );
    }

    #[test]
    fn sizes_are_positive() {
        let msgs = vec![
            CurbMsg::HostPacket {
                packet: Packet::new(HostId(0), HostId(1)),
            },
            request(ReqKind::PktIn { dst_host: 1 }),
            CurbMsg::Reply {
                controller: 0,
                key: RequestKey {
                    switch: SwitchId(0),
                    seq: 1,
                },
                config: ConfigData::FlowRules(vec![]),
            },
            CurbMsg::Agree {
                group: GroupId(0),
                txs: TxListPayload::default(),
            },
            CurbMsg::FinalAgree {
                block: Block::genesis(b"x"),
            },
        ];
        for m in msgs {
            assert!(m.size_bytes() > 0, "{:?}", m.category());
        }
    }

    #[test]
    fn signature_increases_request_size() {
        use curb_crypto::rng::DetRng;
        use curb_crypto::KeyPair;
        let mut rng = DetRng::new(1);
        let keys = KeyPair::generate(&mut rng);
        let record = RequestRecord {
            key: RequestKey {
                switch: SwitchId(0),
                seq: 1,
            },
            kind: ReqKind::PktIn { dst_host: 1 },
        };
        let unsigned = CurbMsg::Request(SignedRequest {
            record: record.clone(),
            signature: None,
        });
        let sig = keys.sign(&record.signing_bytes(), &mut rng);
        let signed = CurbMsg::Request(SignedRequest {
            record,
            signature: Some((keys.public(), sig)),
        });
        assert!(signed.size_bytes() > unsigned.size_bytes());
    }
}

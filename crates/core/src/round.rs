//! The shared round workflow: `f + 1` REPLY matching and byzantine
//! evidence, used by **both** deployments of the s-agent.
//!
//! Algorithm 1 of the paper (accept a configuration once `f + 1`
//! identical replies arrive, accuse contradictors) and the Step-4
//! detection rules (miss strikes, lazy strikes) are pure bookkeeping —
//! nothing about them depends on whether replies arrive as simulator
//! events or over a TCP socket. This module holds that single
//! definition: the discrete-event [`SwitchActor`](crate::SwitchActor)
//! and the real-socket s-agent in `curb-cluster` both drive a
//! [`ReplyMatcher`] per request and an [`EvidenceBook`] per agent, so
//! the two deployments can never drift apart on what counts as
//! byzantine.
//!
//! Timestamps are plain nanosecond counters: the simulator passes
//! `SimTime::as_nanos()`, the cluster passes wall-clock nanos.

use crate::payload::ConfigData;
use std::collections::{BTreeMap, BTreeSet};

/// What one incoming REPLY did to an in-flight request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyOutcome {
    /// Set when this reply completed the `f + 1` quorum: the accepted
    /// configuration to apply.
    pub newly_accepted: Option<ConfigData>,
    /// Controllers whose replies contradict the accepted majority —
    /// byzantine evidence warranting an immediate accusation. Filled
    /// either at acceptance time (earlier contradictors) or when a
    /// late reply disagrees with the already-accepted config.
    pub contradictors: Vec<usize>,
    /// The reply arrived after the timeout audit *and* beyond the lazy
    /// margin past acceptance: the sender earns a lazy strike.
    pub straggler: bool,
}

impl ReplyOutcome {
    fn ignored() -> ReplyOutcome {
        ReplyOutcome {
            newly_accepted: None,
            contradictors: Vec::new(),
            straggler: false,
        }
    }
}

/// Result of the request-timeout audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Audit {
    /// Controllers that never replied (miss-strike candidates).
    pub missing: Vec<usize>,
    /// Controllers that replied beyond the lazy margin after the
    /// quorum formed (lazy-strike candidates).
    pub lazies: Vec<usize>,
}

/// Per-request REPLY matching state (`R_s` in Algorithm 1).
///
/// One matcher lives for the duration of one request; feed it every
/// reply via [`on_reply`](ReplyMatcher::on_reply) and run
/// [`audit`](ReplyMatcher::audit) once when the request times out.
#[derive(Debug)]
pub struct ReplyMatcher {
    accept_quorum: usize,
    lazy_margin_ns: u64,
    /// Replies received: `(controller, config, arrival_ns)`.
    replies: Vec<(usize, ConfigData, u64)>,
    accepted: Option<(ConfigData, u64)>,
    audited: bool,
}

impl ReplyMatcher {
    /// Creates a matcher accepting on `accept_quorum` (= `f + 1`)
    /// identical replies, with lazy replies measured against
    /// `lazy_margin_ns`.
    pub fn new(accept_quorum: usize, lazy_margin_ns: u64) -> ReplyMatcher {
        ReplyMatcher {
            accept_quorum: accept_quorum.max(1),
            lazy_margin_ns,
            replies: Vec::new(),
            accepted: None,
            audited: false,
        }
    }

    /// The accepted configuration, once the quorum has formed.
    pub fn accepted(&self) -> Option<&ConfigData> {
        self.accepted.as_ref().map(|(c, _)| c)
    }

    /// When the quorum formed, in the caller's nanosecond clock.
    pub fn accepted_at(&self) -> Option<u64> {
        self.accepted.as_ref().map(|(_, at)| *at)
    }

    /// Whether the timeout audit already ran.
    pub fn audited(&self) -> bool {
        self.audited
    }

    /// Number of distinct controllers that replied.
    pub fn reply_count(&self) -> usize {
        self.replies.len()
    }

    /// Processes one REPLY from `controller` (Algorithm 1, lines
    /// 3-13). Duplicate votes are ignored; the first `f + 1` identical
    /// configurations accept; disagreeing replies become contradictor
    /// evidence, immediately if the quorum already formed.
    pub fn on_reply(&mut self, controller: usize, config: ConfigData, now_ns: u64) -> ReplyOutcome {
        if self.replies.iter().any(|(c, _, _)| *c == controller) {
            return ReplyOutcome::ignored(); // one vote per controller
        }
        self.replies.push((controller, config.clone(), now_ns));
        let straggler = self.audited
            && self
                .accepted
                .as_ref()
                .is_some_and(|(_, at)| now_ns.saturating_sub(*at) > self.lazy_margin_ns);
        let mut outcome = ReplyOutcome {
            newly_accepted: None,
            contradictors: Vec::new(),
            straggler,
        };
        match &self.accepted {
            None => {
                let matching = self.replies.iter().filter(|(_, c, _)| *c == config).count();
                if matching >= self.accept_quorum {
                    self.accepted = Some((config.clone(), now_ns));
                    outcome.contradictors = self
                        .replies
                        .iter()
                        .filter(|(_, c, _)| *c != config)
                        .map(|(c, _, _)| *c)
                        .collect();
                    outcome.newly_accepted = Some(config);
                }
            }
            Some((accepted, _)) => {
                if *accepted != config {
                    // Late contradiction.
                    outcome.contradictors = vec![controller];
                }
            }
        }
        outcome
    }

    /// Runs the one-shot timeout audit against the agent's current
    /// controller list: who never replied, and who replied beyond the
    /// lazy margin after acceptance. Returns `None` when already
    /// audited.
    pub fn audit(&mut self, ctrl_list: &[usize]) -> Option<Audit> {
        if self.audited {
            return None;
        }
        self.audited = true;
        let mut missing = Vec::new();
        let mut lazies = Vec::new();
        for &c in ctrl_list {
            match self.replies.iter().find(|(rc, _, _)| *rc == c) {
                None => missing.push(c),
                Some((_, _, t)) => {
                    if let Some((_, accepted_at)) = &self.accepted {
                        if t.saturating_sub(*accepted_at) > self.lazy_margin_ns {
                            lazies.push(c);
                        }
                    }
                }
            }
        }
        Some(Audit { missing, lazies })
    }
}

/// Per-agent byzantine evidence: strike tallies and the accused set
/// (Step 4 of the paper).
///
/// Strikes accumulate across requests; the book decides when evidence
/// amounts to an accusation and deduplicates accusations so each
/// controller is accused at most once per epoch.
#[derive(Debug)]
pub struct EvidenceBook {
    suspect_threshold: u32,
    lazy_patience: u32,
    /// Consecutive miss strikes per controller.
    strikes: BTreeMap<usize, u32>,
    /// Lazy strikes per controller.
    lazy_strikes: BTreeMap<usize, u32>,
    /// Controllers already accused (no duplicate RE-ASS).
    accused: BTreeSet<usize>,
}

impl EvidenceBook {
    /// Creates a book that accuses after `suspect_threshold`
    /// consecutive misses or `lazy_patience` lazy strikes.
    pub fn new(suspect_threshold: u32, lazy_patience: u32) -> EvidenceBook {
        EvidenceBook {
            suspect_threshold: suspect_threshold.max(1),
            lazy_patience: lazy_patience.max(1),
            strikes: BTreeMap::new(),
            lazy_strikes: BTreeMap::new(),
            accused: BTreeSet::new(),
        }
    }

    /// A controller that responds is not "missing": miss strikes are
    /// consecutive, so any reply clears the tally.
    pub fn clear_miss(&mut self, controller: usize) {
        self.strikes.remove(&controller);
    }

    /// Records one miss strike; `true` means the threshold is reached
    /// and the controller should be accused.
    pub fn miss_strike(&mut self, controller: usize) -> bool {
        let tally = self.strikes.entry(controller).or_insert(0);
        *tally += 1;
        *tally >= self.suspect_threshold
    }

    /// Records one lazy strike; `true` means patience ran out.
    pub fn lazy_strike(&mut self, controller: usize) -> bool {
        let tally = self.lazy_strikes.entry(controller).or_insert(0);
        *tally += 1;
        *tally >= self.lazy_patience
    }

    /// Filters `controllers` down to those not yet accused, marking
    /// the survivors accused. An empty return means nothing new to
    /// report.
    pub fn fresh_accusations(&mut self, controllers: Vec<usize>) -> Vec<usize> {
        let fresh: Vec<usize> = controllers
            .into_iter()
            .filter(|c| self.accused.insert(*c))
            .collect();
        fresh
    }

    /// Controllers accused so far.
    pub fn accused(&self) -> &BTreeSet<usize> {
        &self.accused
    }

    /// Epoch boundary: a new controller list was adopted.
    ///
    /// * miss-strike tallies always persist (a returning controller
    ///   resumes its record);
    /// * laziness tallies reset only when the list actually `changed` —
    ///   the old epoch's congestion is gone, so stragglers start fresh;
    /// * controllers that remain in (or return to) the list become
    ///   accusable again.
    pub fn adopt_ctrl_list(&mut self, changed: bool, list: &[usize]) {
        if changed {
            self.lazy_strikes.clear();
        }
        self.accused.retain(|c| !list.contains(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::FlowRuleSpec;

    fn rules(port: u16) -> ConfigData {
        ConfigData::FlowRules(vec![FlowRuleSpec {
            priority: 10,
            dst_host: 7,
            out_port: port,
        }])
    }

    #[test]
    fn accepts_on_quorum_and_reports_prior_contradictors() {
        let mut m = ReplyMatcher::new(2, 300);
        // Contradictor first, then the majority.
        assert_eq!(m.on_reply(1, rules(9), 10), ReplyOutcome::ignored());
        assert!(m.on_reply(0, rules(3), 20).newly_accepted.is_none());
        let out = m.on_reply(2, rules(3), 30);
        assert_eq!(out.newly_accepted, Some(rules(3)));
        assert_eq!(out.contradictors, vec![1]);
        assert_eq!(m.accepted(), Some(&rules(3)));
        assert_eq!(m.accepted_at(), Some(30));
    }

    #[test]
    fn duplicate_votes_are_ignored() {
        let mut m = ReplyMatcher::new(2, 300);
        assert!(m.on_reply(0, rules(3), 1).newly_accepted.is_none());
        // Same controller voting again does not reach quorum.
        assert!(m.on_reply(0, rules(3), 2).newly_accepted.is_none());
        assert_eq!(m.reply_count(), 1);
    }

    #[test]
    fn late_contradiction_is_immediate_evidence() {
        let mut m = ReplyMatcher::new(1, 300);
        assert!(m.on_reply(0, rules(3), 1).newly_accepted.is_some());
        let out = m.on_reply(2, rules(9), 5);
        assert_eq!(out.contradictors, vec![2]);
        assert!(out.newly_accepted.is_none());
    }

    #[test]
    fn audit_reports_missing_and_lazy_once() {
        let mut m = ReplyMatcher::new(2, 100);
        m.on_reply(0, rules(3), 10);
        m.on_reply(1, rules(3), 20); // accepted at 20
        m.on_reply(2, rules(3), 500); // 480 ns late: lazy
        let audit = m.audit(&[0, 1, 2, 3]).expect("first audit runs");
        assert_eq!(audit.missing, vec![3]);
        assert_eq!(audit.lazies, vec![2]);
        assert!(m.audit(&[0, 1, 2, 3]).is_none(), "audit is one-shot");
    }

    #[test]
    fn post_audit_straggler_flagged() {
        let mut m = ReplyMatcher::new(1, 100);
        m.on_reply(0, rules(3), 10);
        m.audit(&[0, 1]);
        let out = m.on_reply(1, rules(3), 400);
        assert!(out.straggler);
    }

    #[test]
    fn evidence_book_thresholds_and_dedup() {
        let mut book = EvidenceBook::new(3, 2);
        assert!(!book.miss_strike(5));
        assert!(!book.miss_strike(5));
        book.clear_miss(5); // a reply resets consecutive misses
        assert!(!book.miss_strike(5));
        assert!(!book.miss_strike(5));
        assert!(book.miss_strike(5));
        assert_eq!(book.fresh_accusations(vec![5, 5]), vec![5]);
        assert!(book.fresh_accusations(vec![5]).is_empty(), "no duplicates");
        assert!(!book.lazy_strike(1));
        assert!(book.lazy_strike(1));
    }

    #[test]
    fn adopting_a_changed_list_resets_laziness_and_accusability() {
        let mut book = EvidenceBook::new(3, 2);
        book.lazy_strike(1);
        assert_eq!(book.fresh_accusations(vec![2]), vec![2]);
        book.adopt_ctrl_list(true, &[0, 1, 3]);
        // 2 left the list: its accusation stands (it cannot be
        // re-accused while absent anyway).
        assert!(book.accused().contains(&2));
        book.adopt_ctrl_list(true, &[0, 1, 2]);
        assert!(
            !book.accused().contains(&2),
            "returning controller is accusable again"
        );
        // Lazy tally was reset by the changed list.
        assert!(!book.lazy_strike(1));
    }
}

//! Static shared state and controller fault behaviours.

use crate::config::{CurbConfig, PlaneMode};
use crate::ids::{NodePlan, SwitchId};
use core::time::Duration;
use curb_assign::{Assignment, CapModel, Objective, SolveOptions};
use curb_crypto::PublicKey;

/// Fault-injection behaviour of a controller (the byzantine models of
/// the paper's Section IV-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControllerBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Experiment ❶/❷: does not respond to requests within the timeout
    /// (modelled as fully crash-silent).
    Silent,
    /// Experiment ❸: "lazy" — responds, but with an artificial delay
    /// drawn uniformly from `[min, max]` added to every message.
    Lazy {
        /// Minimum extra delay.
        min: Duration,
        /// Maximum extra delay.
        max: Duration,
    },
}

impl ControllerBehavior {
    /// The paper's lazy profile: 200–500 ms response time.
    pub fn paper_lazy() -> Self {
        ControllerBehavior::Lazy {
            min: Duration::from_millis(200),
            max: Duration::from_millis(500),
        }
    }
}

/// Immutable state shared by every actor: configuration, identities,
/// delay matrices and the routing table.
#[derive(Debug)]
pub struct Shared {
    /// Protocol configuration.
    pub config: CurbConfig,
    /// Node layout.
    pub plan: NodePlan,
    /// Controller identities (public keys broadcast in Step 0).
    pub keys: Vec<PublicKey>,
    /// Controller-to-switch shortest-path delay in ms,
    /// `[switch][controller]`.
    pub cs_delay_ms: Vec<Vec<f64>>,
    /// Controller-to-controller shortest-path delay in ms.
    pub cc_delay_ms: Vec<Vec<f64>>,
    /// Routing table: `next_hop_port[switch][dst_switch]` is the egress
    /// port toward `dst_switch` (port 0 is the local host port).
    pub next_hop_port: Vec<Vec<u16>>,
}

impl Shared {
    /// The switch hosting a (synthetic) host id: hosts are numbered so
    /// that `host % n_switches` is their edge switch.
    pub fn dst_switch(&self, host: u32) -> SwitchId {
        SwitchId(host as usize % self.plan.n_switches)
    }

    /// Quorum parameter for switch-side reply matching (`f + 1`
    /// identical configs): the per-group `f` under grouped mode, the
    /// global `⌊(N−1)/3⌋` under the flat baseline.
    pub fn accept_f(&self) -> usize {
        match self.config.mode {
            PlaneMode::Grouped { .. } => self.config.f,
            PlaneMode::Flat => (self.plan.n_controllers.saturating_sub(1)) / 3,
        }
    }

    /// Builds the CAP model for a reassignment: current exclusions plus
    /// newly accused controllers, optional leader pins, LCR previous
    /// assignment.
    pub fn reassignment_problem(
        &self,
        removed: &[bool],
        accused: &[usize],
        leader_pins: &[Option<usize>],
        previous: &Assignment,
    ) -> (CapModel, SolveOptions) {
        let mut model = self.base_model();
        for (j, &r) in removed.iter().enumerate() {
            if r {
                model.exclude(j);
            }
        }
        for &a in accused {
            if a < self.plan.n_controllers {
                model.exclude(a);
            }
        }
        if self.config.pin_leaders {
            for (i, pin) in leader_pins.iter().enumerate() {
                if let Some(l) = *pin {
                    if !model.excluded[l] && model.cs_delay[i][l] <= model.max_cs_delay {
                        model.pin_leader(i, l);
                    }
                }
            }
        }
        let options = SolveOptions {
            objective: self.config.reassign_objective,
            previous: Some(previous.clone()),
            // In-protocol solves run inside a live round: bound the
            // search (anytime best-found), like a time-limited Gurobi.
            node_limit: 50_000,
            seed: self.config.seed,
        };
        (model, options)
    }

    /// The base CAP model (initial assignment, `[O1/C1.1–C1.4]`).
    pub fn base_model(&self) -> CapModel {
        let mut model = CapModel::new(self.plan.n_switches, self.plan.n_controllers);
        model
            .set_fault_tolerance(self.config.f)
            .set_cs_delay(self.cs_delay_ms.clone())
            .set_cc_delay(self.cc_delay_ms.clone())
            .set_max_cs_delay(self.config.max_cs_delay_ms)
            .set_max_cc_delay(self.config.max_cc_delay_ms);
        model.capacity = vec![self.config.controller_capacity; self.plan.n_controllers];
        model
    }

    /// Solve options for the initial assignment.
    pub fn initial_options(&self) -> SolveOptions {
        SolveOptions {
            objective: Objective::Tcr,
            previous: None,
            node_limit: 0,
            seed: self.config.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::field_reassign_with_default)]
    fn shared(mode: PlaneMode) -> Shared {
        let mut config = CurbConfig::default();
        config.mode = mode;
        Shared {
            config,
            plan: NodePlan {
                n_controllers: 7,
                n_switches: 3,
            },
            keys: Vec::new(),
            cs_delay_ms: vec![vec![1.0; 7]; 3],
            cc_delay_ms: vec![vec![1.0; 7]; 7],
            next_hop_port: vec![vec![0; 3]; 3],
        }
    }

    #[test]
    fn dst_switch_wraps() {
        let s = shared(PlaneMode::Grouped { parallel: false });
        assert_eq!(s.dst_switch(0), SwitchId(0));
        assert_eq!(s.dst_switch(4), SwitchId(1));
    }

    #[test]
    fn accept_quorum_depends_on_mode() {
        assert_eq!(shared(PlaneMode::Grouped { parallel: false }).accept_f(), 1);
        assert_eq!(shared(PlaneMode::Flat).accept_f(), 2); // (7-1)/3
    }

    #[test]
    fn reassignment_model_excludes_accused_and_removed() {
        let s = shared(PlaneMode::Grouped { parallel: false });
        let mut removed = vec![false; 7];
        removed[2] = true;
        let prev = Assignment::from_groups(vec![vec![0, 1, 2, 3]; 3], 7);
        let (model, opts) = s.reassignment_problem(&removed, &[5], &[None; 3], &prev);
        assert!(model.excluded[2]);
        assert!(model.excluded[5]);
        assert!(!model.excluded[0]);
        assert!(opts.previous.is_some());
    }

    #[test]
    fn base_model_uses_config() {
        let s = shared(PlaneMode::Grouped { parallel: false });
        let m = s.base_model();
        assert_eq!(m.group_size, vec![4; 3]);
        assert_eq!(m.capacity, vec![11; 7]);
    }

    #[test]
    fn paper_lazy_range() {
        match ControllerBehavior::paper_lazy() {
            ControllerBehavior::Lazy { min, max } => {
                assert_eq!(min, Duration::from_millis(200));
                assert_eq!(max, Duration::from_millis(500));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

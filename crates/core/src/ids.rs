//! Protocol-level identifiers.
//!
//! Controllers and switches are indexed separately at the protocol
//! level; [`NodePlan`] maps them onto the flat node space of the
//! discrete-event simulator (controllers first, then switches).

use core::fmt;
use curb_sim::NodeId;

/// Index of a controller (`0..n_controllers`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ControllerId(pub usize);

/// Index of a switch (`0..n_switches`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub usize);

/// Index of a controller group (groups are deduplicated controller
/// sets; multiple switches may share a group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub usize);

impl fmt::Display for ControllerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Layout of protocol entities in the simulator's node space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePlan {
    /// Number of controllers.
    pub n_controllers: usize,
    /// Number of switches.
    pub n_switches: usize,
}

impl NodePlan {
    /// Simulator node of a controller.
    pub fn controller_node(&self, c: ControllerId) -> NodeId {
        debug_assert!(c.0 < self.n_controllers);
        NodeId(c.0)
    }

    /// Simulator node of a switch.
    pub fn switch_node(&self, s: SwitchId) -> NodeId {
        debug_assert!(s.0 < self.n_switches);
        NodeId(self.n_controllers + s.0)
    }

    /// Reverse mapping: what protocol entity lives on `node`?
    pub fn entity(&self, node: NodeId) -> Entity {
        if node.0 < self.n_controllers {
            Entity::Controller(ControllerId(node.0))
        } else {
            Entity::Switch(SwitchId(node.0 - self.n_controllers))
        }
    }

    /// Total number of simulator nodes.
    pub fn total_nodes(&self) -> usize {
        self.n_controllers + self.n_switches
    }
}

/// A protocol entity resolved from a simulator node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// The node hosts a controller.
    Controller(ControllerId),
    /// The node hosts a switch (s-agent).
    Switch(SwitchId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_roundtrip() {
        let plan = NodePlan {
            n_controllers: 16,
            n_switches: 34,
        };
        assert_eq!(plan.total_nodes(), 50);
        assert_eq!(plan.controller_node(ControllerId(3)), NodeId(3));
        assert_eq!(plan.switch_node(SwitchId(0)), NodeId(16));
        assert_eq!(plan.entity(NodeId(3)), Entity::Controller(ControllerId(3)));
        assert_eq!(plan.entity(NodeId(16)), Entity::Switch(SwitchId(0)));
        assert_eq!(plan.entity(NodeId(49)), Entity::Switch(SwitchId(33)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ControllerId(2).to_string(), "c2");
        assert_eq!(SwitchId(5).to_string(), "s5");
        assert_eq!(GroupId(1).to_string(), "g1");
    }
}

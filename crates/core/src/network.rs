//! The top-level simulation: Step 0 initialisation and the round
//! driver.

use crate::config::{CurbConfig, PlaneMode};
use crate::controller::ControllerActor;
use crate::epoch::Epoch;
use crate::ids::{ControllerId, Entity, NodePlan, SwitchId};
use crate::metrics::{Report, RoundReport};
use crate::msg::CurbMsg;
use crate::payload::{ConfigData, ProtoTx};
use crate::shared::{ControllerBehavior, Shared};
use crate::switch::SwitchActor;
use curb_assign::{solve, Assignment, SolveError};
use curb_chain::Blockchain;
use curb_crypto::rng::DetRng;
use curb_crypto::KeyPair;
use curb_graph::{DelayModel, Internet2};
use curb_sdn::{HostId, Packet};
use curb_sim::{Actor, Context, NodeId, SimTime, Simulation, TimerTag};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Errors raised while constructing a [`CurbNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// The initial controller-assignment problem is infeasible under
    /// the configured constraints.
    Assignment(SolveError),
    /// The topology does not contain both controllers and switches.
    EmptyTopology,
}

impl core::fmt::Display for SetupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SetupError::Assignment(e) => write!(f, "initial assignment failed: {e}"),
            SetupError::EmptyTopology => write!(f, "topology has no controllers or switches"),
        }
    }
}

impl std::error::Error for SetupError {}

/// A simulated node: either a controller or a switch.
#[derive(Debug)]
pub enum CurbNode {
    /// A controller.
    Controller(Box<ControllerActor>),
    /// A switch (s-agent).
    Switch(Box<SwitchActor>),
}

impl Actor<CurbMsg> for CurbNode {
    fn on_message(&mut self, ctx: &mut Context<'_, CurbMsg>, from: NodeId, msg: CurbMsg) {
        match self {
            CurbNode::Controller(c) => c.on_message(ctx, from, msg),
            CurbNode::Switch(s) => s.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CurbMsg>, tag: TimerTag) {
        match self {
            CurbNode::Controller(c) => c.on_timer(ctx, tag),
            CurbNode::Switch(s) => s.on_timer(ctx, tag),
        }
    }
}

/// The complete Curb simulation: topology, controllers, switches and
/// the round driver.
///
/// # Examples
///
/// ```rust
/// use curb_core::{CurbConfig, CurbNetwork};
/// use curb_graph::internet2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = internet2();
/// let mut net = CurbNetwork::new(&topo, CurbConfig::default())?;
/// let report = net.run_rounds(2);
/// assert_eq!(report.rounds.len(), 2);
/// assert!(report.rounds[0].accepted > 0);
/// # Ok(())
/// # }
/// ```
pub struct CurbNetwork {
    sim: Simulation<CurbMsg, CurbNode>,
    shared: Arc<Shared>,
    epoch: Arc<Epoch>,
    rng: DetRng,
    round: usize,
    chain_seen_height: u64,
    removed: Vec<bool>,
    metrics: RoundMetrics,
}

/// Typed handles into the per-network [`curb_telemetry::Registry`].
/// [`RoundReport`] remains the user-facing per-round view; the registry
/// accumulates the same quantities across the whole run.
#[derive(Clone)]
struct RoundMetrics {
    registry: curb_telemetry::Registry,
    rounds: curb_telemetry::Counter,
    requests: curb_telemetry::Counter,
    accepted: curb_telemetry::Counter,
    committed_txs: curb_telemetry::Counter,
    reassignments: curb_telemetry::Counter,
    messages: curb_telemetry::Counter,
    bytes: curb_telemetry::Counter,
    chain_height: curb_telemetry::Gauge,
    request_latency_ns: curb_telemetry::HistogramHandle,
}

impl RoundMetrics {
    fn new() -> Self {
        let registry = curb_telemetry::Registry::new();
        RoundMetrics {
            rounds: registry.counter("core.rounds"),
            requests: registry.counter("core.requests"),
            accepted: registry.counter("core.accepted"),
            committed_txs: registry.counter("core.committed_txs"),
            reassignments: registry.counter("core.reassignments"),
            messages: registry.counter("core.messages"),
            bytes: registry.counter("core.bytes"),
            chain_height: registry.gauge("core.chain_height"),
            request_latency_ns: registry.histogram("core.request_latency_ns"),
            registry,
        }
    }

    fn publish(&self, report: &RoundReport, latencies: &[Duration]) {
        self.rounds.inc();
        self.requests.add(report.requests as u64);
        self.accepted.add(report.accepted as u64);
        self.committed_txs.add(report.committed_txs as u64);
        self.reassignments.add(report.reassignments as u64);
        self.messages.add(report.messages);
        self.bytes.add(report.bytes);
        self.chain_height.set(report.chain_height as i64);
        for l in latencies {
            self.request_latency_ns.record(l.as_nanos() as u64);
        }
    }
}

impl std::fmt::Debug for CurbNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CurbNetwork")
            .field("controllers", &self.shared.plan.n_controllers)
            .field("switches", &self.shared.plan.n_switches)
            .field("groups", &self.epoch.group_count())
            .field("round", &self.round)
            .finish()
    }
}

impl CurbNetwork {
    /// Builds the simulation from a topology: runs Step 0 (key
    /// generation, the initial OP assignment, genesis block) and wires
    /// every site into the discrete-event network with
    /// geography-derived delays.
    ///
    /// # Errors
    ///
    /// Returns [`SetupError`] if the topology is empty or the initial
    /// assignment is infeasible.
    pub fn new(topo: &Internet2, config: CurbConfig) -> Result<Self, SetupError> {
        let controller_sites: Vec<usize> = topo.controllers().collect();
        let switch_sites: Vec<usize> = topo.switches().collect();
        if controller_sites.is_empty() || switch_sites.is_empty() {
            return Err(SetupError::EmptyTopology);
        }
        let plan = NodePlan {
            n_controllers: controller_sites.len(),
            n_switches: switch_sites.len(),
        };
        let model = DelayModel::paper_default();
        let km_table = topo.graph.all_pairs();
        let km = |a: usize, b: usize| km_table[a][b];
        let ms = |a: usize, b: usize| model.propagation(km(a, b)).as_secs_f64() * 1_000.0;

        let cs_delay_ms: Vec<Vec<f64>> = switch_sites
            .iter()
            .map(|&s| controller_sites.iter().map(|&c| ms(s, c)).collect())
            .collect();
        let cc_delay_ms: Vec<Vec<f64>> = controller_sites
            .iter()
            .map(|&a| controller_sites.iter().map(|&b| ms(a, b)).collect())
            .collect();

        // Routing table: first hop toward each destination switch.
        let mut next_hop_port = vec![vec![0u16; plan.n_switches]; plan.n_switches];
        for (i, &site) in switch_sites.iter().enumerate() {
            let neighbors: Vec<usize> = topo.graph.neighbors(site).map(|(n, _)| n).collect();
            for (j, &dst_site) in switch_sites.iter().enumerate() {
                if i == j {
                    next_hop_port[i][j] = 0; // local host port
                    continue;
                }
                if let Some((_, path)) = topo.graph.shortest_path(site, dst_site) {
                    let first_hop = path[1];
                    let port = neighbors
                        .iter()
                        .position(|&n| n == first_hop)
                        .expect("first hop is a neighbor");
                    next_hop_port[i][j] = (port + 1) as u16;
                }
            }
        }

        let mut rng = DetRng::new(config.seed);
        let controller_keys: Vec<KeyPair> = (0..plan.n_controllers)
            .map(|_| KeyPair::generate(&mut rng))
            .collect();
        let switch_keys: Vec<KeyPair> = (0..plan.n_switches)
            .map(|_| KeyPair::generate(&mut rng))
            .collect();
        let public_keys = controller_keys.iter().map(|k| k.public()).collect();

        let shared = Arc::new(Shared {
            config,
            plan,
            keys: public_keys,
            cs_delay_ms,
            cc_delay_ms,
            next_hop_port,
        });

        // Step 0: the initial assignment.
        let assignment = match shared.config.mode {
            PlaneMode::Grouped { .. } => {
                let model = shared.base_model();
                let solution =
                    solve(&model, &shared.initial_options()).map_err(SetupError::Assignment)?;
                solution.assignment
            }
            PlaneMode::Flat => {
                let all: Vec<usize> = (0..plan.n_controllers).collect();
                Assignment::from_groups(vec![all; plan.n_switches], plan.n_controllers)
            }
        };
        let removed = vec![false; plan.n_controllers];
        let epoch = Arc::new(Epoch::build(
            assignment,
            &shared.keys,
            shared.config.f,
            removed.clone(),
        ));
        let genesis_record = ConfigData::NewAssignment {
            groups: (0..plan.n_switches)
                .map(|i| epoch.assignment.group(i).iter().copied().collect())
                .collect(),
        }
        .encode();

        // Actors.
        let mut actors: Vec<CurbNode> = Vec::with_capacity(plan.total_nodes());
        for (c, keys) in controller_keys.into_iter().enumerate() {
            actors.push(CurbNode::Controller(Box::new(ControllerActor::new(
                c,
                shared.clone(),
                epoch.clone(),
                keys,
                rng.fork(),
                &genesis_record,
            ))));
        }
        for (s, keys) in switch_keys.into_iter().enumerate() {
            let sid = SwitchId(s);
            actors.push(CurbNode::Switch(Box::new(SwitchActor::new(
                sid,
                shared.clone(),
                epoch.ctrl_list(sid).to_vec(),
                Some(keys),
                rng.fork(),
            ))));
        }

        // The simulated network: propagation delays from in-network
        // shortest-path distances, serialization at 100 Mbps.
        let mut sim = Simulation::new(actors);
        let site_of = |node: usize| -> usize {
            if node < plan.n_controllers {
                controller_sites[node]
            } else {
                switch_sites[node - plan.n_controllers]
            }
        };
        let n = plan.total_nodes();
        let matrix: Vec<Vec<Duration>> = (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| model.propagation(km(site_of(a), site_of(b))))
                    .collect()
            })
            .collect();
        sim.set_delay_matrix(matrix);
        sim.set_bandwidth_bps(Some(model.bandwidth_bps));
        for c in 0..plan.n_controllers {
            sim.set_service_time(NodeId(c), shared.config.controller_service);
        }
        for s in 0..plan.n_switches {
            sim.set_service_time(NodeId(plan.n_controllers + s), shared.config.switch_service);
        }

        Ok(CurbNetwork {
            sim,
            shared,
            epoch,
            rng,
            round: 0,
            chain_seen_height: 0,
            removed,
            metrics: RoundMetrics::new(),
        })
    }

    /// Number of controllers.
    pub fn n_controllers(&self) -> usize {
        self.shared.plan.n_controllers
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.shared.plan.n_switches
    }

    /// The current epoch (assignment, groups, final committee).
    pub fn epoch(&self) -> &Epoch {
        &self.epoch
    }

    /// Blocks (or restores) the control channel between a switch and
    /// one of its controllers — a network partition rather than a node
    /// fault. From the switch's perspective the controller stops
    /// responding, so the same detection machinery applies.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_control_channel_blocked(
        &mut self,
        switch: SwitchId,
        controller: usize,
        blocked: bool,
    ) {
        let a = self.shared.plan.switch_node(switch);
        let b = self.shared.plan.controller_node(ControllerId(controller));
        if blocked {
            self.sim.block_link(a, b);
        } else {
            self.sim.unblock_link(a, b);
        }
    }

    /// Makes every delivery fail independently with the given
    /// probability (a lossy edge network); deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn set_loss_rate(&mut self, p: f64) {
        self.sim.set_loss_rate(p);
    }

    /// Sets a controller's fault behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `controller` is out of range.
    pub fn set_controller_behavior(&mut self, controller: usize, behavior: ControllerBehavior) {
        let node = self.shared.plan.controller_node(ControllerId(controller));
        match self.sim.actor_mut(node) {
            CurbNode::Controller(c) => c.set_behavior(behavior),
            CurbNode::Switch(_) => unreachable!("node plan maps controllers first"),
        }
    }

    /// The blockchain of the first honest controller.
    pub fn blockchain(&self) -> &Blockchain {
        let c = self.honest_controller();
        match self
            .sim
            .actor(self.shared.plan.controller_node(ControllerId(c)))
        {
            CurbNode::Controller(actor) => actor.chain(),
            CurbNode::Switch(_) => unreachable!("node plan maps controllers first"),
        }
    }

    /// Access to a controller actor (e.g. to inspect its blockchain).
    ///
    /// # Panics
    ///
    /// Panics if `controller` is out of range.
    pub fn controller(&self, controller: ControllerId) -> &ControllerActor {
        match self.sim.actor(self.shared.plan.controller_node(controller)) {
            CurbNode::Controller(c) => c,
            CurbNode::Switch(_) => unreachable!("node plan maps controllers first"),
        }
    }

    /// Access to a switch actor (e.g. to inspect its flow table).
    ///
    /// # Panics
    ///
    /// Panics if `switch` is out of range.
    pub fn switch(&self, switch: SwitchId) -> &SwitchActor {
        match self.sim.actor(self.shared.plan.switch_node(switch)) {
            CurbNode::Switch(s) => s,
            CurbNode::Controller(_) => unreachable!("node plan maps switches after controllers"),
        }
    }

    /// Cumulative message statistics of the simulated network.
    pub fn message_stats(&self) -> &curb_sim::MessageStats {
        self.sim.stats()
    }

    /// Telemetry registry accumulating round metrics across the run
    /// (`core.*` counters plus the `core.request_latency_ns`
    /// histogram). Per-round [`RoundReport`]s are views over the same
    /// quantities, scoped to one round.
    pub fn registry(&self) -> &curb_telemetry::Registry {
        &self.metrics.registry
    }

    /// Installs this simulation's virtual clock as the process-wide
    /// telemetry clock, so trace spans carry simulated timestamps.
    pub fn install_telemetry_clock(&self) {
        self.sim.install_telemetry_clock();
    }

    /// Number of simulator events still queued (should stay small at
    /// round boundaries; useful for debugging).
    pub fn pending_events(&self) -> usize {
        self.sim.pending_events()
    }

    fn honest_controller(&self) -> usize {
        (0..self.shared.plan.n_controllers)
            .find(|&c| {
                match self
                    .sim
                    .actor(self.shared.plan.controller_node(ControllerId(c)))
                {
                    CurbNode::Controller(actor) => {
                        actor.behavior() == ControllerBehavior::Honest && !self.removed[c]
                    }
                    CurbNode::Switch(_) => false,
                }
            })
            .unwrap_or(0)
    }

    /// Runs one protocol round: every switch receives one fresh host
    /// flow (guaranteed table miss), raising one PKT-IN each; the round
    /// is driven until `2 × timeout` of simulated time has passed.
    pub fn run_round(&mut self) -> RoundReport {
        self.round += 1;
        let start = self.sim.now();
        let messages_before = self.sim.stats().total_messages();
        let bytes_before = self.sim.stats().total_bytes();
        let n_switches = self.shared.plan.n_switches;

        // Consensus instances are round-scoped: every round starts from
        // the designated (fixed) leaders, per constraint C2.6.
        for c in 0..self.shared.plan.n_controllers {
            let node = self.shared.plan.controller_node(ControllerId(c));
            if let CurbNode::Controller(actor) = self.sim.actor_mut(node) {
                actor.begin_round();
            }
        }

        // Inject fresh flows: `requests_per_switch` per switch, spread
        // over the injection window. Host numbering makes every
        // destination unique across rounds and repeats, so each packet
        // is a guaranteed table miss (a new flow).
        let per_switch = self.shared.config.requests_per_switch.max(1);
        let window_ns = self.shared.config.inject_window.as_nanos() as u64;
        for k in 0..per_switch {
            for s in 0..n_switches {
                let dst = {
                    let d = self.rng.next_below(n_switches.max(2) as u64 - 1) as usize;
                    if d >= s {
                        d + 1
                    } else {
                        d
                    }
                };
                let flow = self.round * per_switch + k;
                let dst_host = (flow * n_switches + dst) as u32;
                let src_host = s as u32;
                let node = self.shared.plan.switch_node(SwitchId(s));
                let packet = Packet::new(HostId(src_host), HostId(dst_host));
                let at = if window_ns == 0 {
                    start
                } else {
                    start + Duration::from_nanos(self.rng.next_below(window_ns))
                };
                self.sim
                    .post_at(at, node, node, CurbMsg::HostPacket { packet });
            }
        }

        let deadline = start + self.shared.config.timeout * 2;
        self.sim.run_until(deadline);
        self.finish_round(start, messages_before, bytes_before)
    }

    /// Drains switch outcomes and builds the round report.
    fn finish_round(
        &mut self,
        start: SimTime,
        messages_before: u64,
        bytes_before: u64,
    ) -> RoundReport {
        self.sync_lagging_chains();
        let n_switches = self.shared.plan.n_switches;
        // Collect outcomes.
        let mut latencies: Vec<Duration> = Vec::new();
        let mut requests = 0;
        let mut accepted = 0;
        let mut reassignments = 0;
        let mut last_accept: Option<SimTime> = None;
        for s in 0..n_switches {
            let node = self.shared.plan.switch_node(SwitchId(s));
            let outcomes = match self.sim.actor_mut(node) {
                CurbNode::Switch(sw) => sw.drain_outcomes(true),
                CurbNode::Controller(_) => unreachable!("switch nodes"),
            };
            for o in outcomes {
                requests += 1;
                if let Some(at) = o.accepted_at {
                    accepted += 1;
                    latencies.push(at.since(o.sent_at));
                    last_accept = Some(last_accept.map_or(at, |t: SimTime| t.max(at)));
                    if o.is_reassignment {
                        reassignments += 1;
                    }
                }
            }
        }
        let avg_latency = if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<Duration>() / latencies.len() as u32)
        };
        let throughput_tps = match last_accept {
            Some(t) if t > start => accepted as f64 / t.since(start).as_secs_f64(),
            _ => 0.0,
        };

        // Apply committed reassignments (effective next round).
        let (pdl, committed_reass) = self.apply_reassignments();
        // Count reassignments by what the blockchain committed, not by
        // switch-side acceptance: a RE-ASS issued at a round's timeout
        // often completes just across the round boundary.
        let reassignments = reassignments.max(committed_reass);

        let chain_height = self.blockchain().height();
        let committed_txs = {
            let chain = self.blockchain();
            let seen = self.chain_seen_height;
            let mut n = 0;
            for h in (seen + 1)..=chain.height() {
                if let Some(b) = chain.block_at(h) {
                    n += b.txs.len();
                }
            }
            n
        };
        self.chain_seen_height = chain_height;

        let removed_controllers: Vec<usize> = self
            .removed
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(c, _)| c)
            .collect();

        let report = RoundReport {
            round: self.round,
            requests,
            accepted,
            committed_txs,
            avg_latency,
            throughput_tps,
            messages: self.sim.stats().total_messages() - messages_before,
            bytes: self.sim.stats().total_bytes() - bytes_before,
            reassignments,
            removed_controllers,
            pdl,
            chain_height,
            duration: self.sim.now().since(start),
        };
        self.metrics.publish(&report, &latencies);
        report
    }

    /// Runs `n` rounds and aggregates the reports.
    pub fn run_rounds(&mut self, n: usize) -> Report {
        Report {
            rounds: (0..n).map(|_| self.run_round()).collect(),
        }
    }

    /// Runs one round in which every switch issues a `RE-ASS` request
    /// accusing `accused` (instead of the usual PKT-IN workload). An
    /// empty accusation exercises the full OP + consensus reassignment
    /// path without changing the assignment — the workload of the
    /// paper's Fig. 9.
    pub fn run_reassignment_round(&mut self, accused: Vec<usize>) -> RoundReport {
        self.round += 1;
        let start = self.sim.now();
        let messages_before = self.sim.stats().total_messages();
        let bytes_before = self.sim.stats().total_bytes();
        let n_switches = self.shared.plan.n_switches;
        for c in 0..self.shared.plan.n_controllers {
            let node = self.shared.plan.controller_node(ControllerId(c));
            if let CurbNode::Controller(actor) = self.sim.actor_mut(node) {
                actor.begin_round();
            }
        }
        for s in 0..n_switches {
            let node = self.shared.plan.switch_node(SwitchId(s));
            self.sim.post(
                node,
                node,
                CurbMsg::TriggerReassign {
                    accused: accused.clone(),
                },
            );
        }
        let deadline = start + self.shared.config.timeout * 2;
        self.sim.run_until(deadline);
        self.finish_round(start, messages_before, bytes_before)
    }

    /// Scans the (honest) chain for newly committed reassignments and
    /// installs the latest as the next epoch. Returns the PDL if an
    /// epoch change happened, plus the number of committed RE-ASS
    /// transactions.
    fn apply_reassignments(&mut self) -> (Option<f64>, usize) {
        let mut committed_reass = 0usize;
        let mut newly_accused: BTreeSet<usize> = BTreeSet::new();
        let new_groups: Option<Vec<Vec<usize>>> = {
            let chain = self.blockchain();
            // Walk transactions in chain order; an assignment is valid
            // only if it uses no controller accused at or before its
            // position (concurrent solves cannot see each other's
            // accusations, so a later-committed assignment could
            // otherwise resurrect a just-removed byzantine controller).
            let mut removed_so_far: BTreeSet<usize> = self
                .removed
                .iter()
                .enumerate()
                .filter(|(_, &r)| r)
                .map(|(c, _)| c)
                .collect();
            let mut latest = None;
            for h in (self.chain_seen_height + 1)..=chain.height() {
                let Some(block) = chain.block_at(h) else {
                    continue;
                };
                for tx in &block.txs {
                    if let Some(proto) = ProtoTx::from_chain_tx(tx) {
                        if let crate::payload::ReqKind::ReAss { accused } = &proto.record.kind {
                            committed_reass += 1;
                            newly_accused.extend(accused.iter().copied());
                            removed_so_far.extend(accused.iter().copied());
                        }
                        if let ConfigData::NewAssignment { groups } = proto.config {
                            let uses_removed =
                                groups.iter().flatten().any(|c| removed_so_far.contains(c));
                            if !uses_removed {
                                latest = Some(groups);
                            }
                        }
                    }
                }
            }
            latest
        };
        // Only controllers accused by a *committed* RE-ASS are removed
        // from the control plane; merely-unused controllers stay
        // eligible for future assignments. Removal is recorded even if
        // the applied assignment ends up unchanged, so later OP solves
        // keep excluding them.
        let mut removed_changed = false;
        for c in newly_accused {
            if c < self.removed.len() && !self.removed[c] {
                self.removed[c] = true;
                removed_changed = true;
            }
        }
        let new_assignment = match new_groups {
            Some(groups) => Assignment::from_groups(groups, self.shared.plan.n_controllers),
            None if removed_changed => self.epoch.assignment.clone(),
            None => return (None, committed_reass),
        };
        if new_assignment == self.epoch.assignment && !removed_changed {
            return (None, committed_reass);
        }
        let pdl = self.epoch.assignment.pdl_to(&new_assignment);
        let epoch = Arc::new(Epoch::build(
            new_assignment,
            &self.shared.keys,
            self.shared.config.f,
            self.removed.clone(),
        ));
        self.epoch = epoch.clone();
        for c in 0..self.shared.plan.n_controllers {
            let node = self.shared.plan.controller_node(ControllerId(c));
            if let CurbNode::Controller(actor) = self.sim.actor_mut(node) {
                actor.install_epoch(epoch.clone());
            }
        }
        for s in 0..self.shared.plan.n_switches {
            let sid = SwitchId(s);
            let node = self.shared.plan.switch_node(sid);
            let list = epoch.ctrl_list(sid).to_vec();
            if let CurbNode::Switch(actor) = self.sim.actor_mut(node) {
                actor.set_ctrl_list(list);
            }
        }
        (Some(pdl), committed_reass)
    }

    /// State transfer at the round boundary: controllers that missed
    /// block announcements adopt the longest honest chain (every block
    /// on an honest chain is final-committee certified, so longest =
    /// most complete), so a future leadership role never builds on a
    /// stale tip and replies never dry up behind a height gap.
    fn sync_lagging_chains(&mut self) {
        let best = (0..self.shared.plan.n_controllers)
            .filter(|&c| {
                matches!(
                    self.sim.actor(self.shared.plan.controller_node(ControllerId(c))),
                    CurbNode::Controller(a)
                        if a.behavior() == ControllerBehavior::Honest && !self.removed[c]
                )
            })
            .max_by_key(|&c| {
                match self
                    .sim
                    .actor(self.shared.plan.controller_node(ControllerId(c)))
                {
                    CurbNode::Controller(a) => a.chain().height(),
                    CurbNode::Switch(_) => 0,
                }
            })
            .unwrap_or(0);
        let reference: Vec<curb_chain::Block> = match self
            .sim
            .actor(self.shared.plan.controller_node(ControllerId(best)))
        {
            CurbNode::Controller(a) => a.chain().iter().cloned().collect(),
            CurbNode::Switch(_) => return,
        };
        let tip_height = reference.last().map_or(0, |b| b.header.height);
        for c in 0..self.shared.plan.n_controllers {
            let node = self.shared.plan.controller_node(ControllerId(c));
            if let CurbNode::Controller(actor) = self.sim.actor_mut(node) {
                if actor.chain().height() < tip_height {
                    actor.catch_up(&reference);
                }
            }
        }
    }

    /// Resolves which entity lives on a node (mostly for debugging).
    pub fn entity(&self, node: NodeId) -> Entity {
        self.shared.plan.entity(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curb_graph::{internet2, synthetic, Graph, Role, Site};

    fn empty_topology() -> Internet2 {
        // A single switch site, no controllers.
        Internet2 {
            sites: vec![Site {
                name: "lonely".to_string(),
                lat: 40.0,
                lon: -100.0,
                role: Role::Switch,
            }],
            graph: Graph::with_nodes(1),
        }
    }

    #[test]
    fn empty_topology_rejected() {
        let err = CurbNetwork::new(&empty_topology(), CurbConfig::default()).unwrap_err();
        assert_eq!(err, SetupError::EmptyTopology);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn infeasible_assignment_reported() {
        // D_c,s below the feasibility threshold of the Internet2 CAP.
        let mut config = CurbConfig::default();
        config.max_cs_delay_ms = 1.0;
        let err = CurbNetwork::new(&internet2(), config).unwrap_err();
        assert!(matches!(err, SetupError::Assignment(_)));
    }

    #[test]
    fn flat_mode_assigns_every_controller_to_every_switch() {
        let net = CurbNetwork::new(&internet2(), CurbConfig::default().flat()).unwrap();
        assert_eq!(net.epoch().group_count(), 1);
        assert_eq!(net.epoch().groups[0].members.len(), 16);
        for s in 0..net.n_switches() {
            assert_eq!(net.switch(SwitchId(s)).ctrl_list().len(), 16);
        }
    }

    #[test]
    fn accessors_are_consistent() {
        let net = CurbNetwork::new(&internet2(), CurbConfig::default()).unwrap();
        assert_eq!(net.n_controllers(), 16);
        assert_eq!(net.n_switches(), 34);
        assert_eq!(net.pending_events(), 0);
        assert_eq!(net.blockchain().height(), 0, "genesis only before rounds");
        assert!(matches!(net.entity(NodeId(0)), Entity::Controller(_)));
        assert!(matches!(net.entity(NodeId(16)), Entity::Switch(_)));
        for c in 0..16 {
            assert_eq!(net.controller(ControllerId(c)).id(), ControllerId(c));
        }
    }

    #[test]
    fn every_switch_has_a_full_group_initially() {
        let net = CurbNetwork::new(&internet2(), CurbConfig::default()).unwrap();
        for s in 0..net.n_switches() {
            let list = net.switch(SwitchId(s)).ctrl_list();
            assert_eq!(list.len(), 4, "switch {s} group size 3f+1");
            // The epoch and the switch agree.
            assert_eq!(list, net.epoch().ctrl_list(SwitchId(s)));
        }
    }

    #[test]
    fn reassignment_round_on_synthetic_topology() {
        let topo = synthetic(8, 12, 3);
        let mut config = CurbConfig::default();
        config.max_cs_delay_ms = f64::INFINITY;
        config.controller_capacity = 16;
        let mut net = CurbNetwork::new(&topo, config).unwrap();
        let report = net.run_reassignment_round(Vec::new());
        assert_eq!(report.accepted, report.requests);
        assert!(report.reassignments > 0);
    }

    #[test]
    fn registry_accumulates_round_metrics() {
        let topo = synthetic(8, 12, 3);
        let mut config = CurbConfig::default();
        config.max_cs_delay_ms = f64::INFINITY;
        config.controller_capacity = 16;
        let mut net = CurbNetwork::new(&topo, config).unwrap();
        let r1 = net.run_round();
        let r2 = net.run_round();
        let reg = net.registry();
        assert_eq!(reg.counter("core.rounds").get(), 2);
        assert_eq!(
            reg.counter("core.requests").get(),
            (r1.requests + r2.requests) as u64
        );
        assert_eq!(
            reg.counter("core.accepted").get(),
            (r1.accepted + r2.accepted) as u64
        );
        assert_eq!(
            reg.counter("core.committed_txs").get(),
            (r1.committed_txs + r2.committed_txs) as u64
        );
        assert_eq!(
            reg.counter("core.messages").get(),
            r1.messages + r2.messages
        );
        assert_eq!(reg.gauge("core.chain_height").get(), r2.chain_height as i64);
        let hist = reg.histogram("core.request_latency_ns").snapshot();
        assert_eq!(hist.count(), (r1.accepted + r2.accepted) as u64);
        // The histogram and the report agree on the scale of latencies.
        let mean_ns = (r1.avg_latency.unwrap() + r2.avg_latency.unwrap()).as_nanos() as f64 / 2.0;
        assert!(hist.mean() > mean_ns / 4.0);
        assert!(hist.mean() < mean_ns * 4.0);
    }

    #[test]
    fn genesis_records_the_initial_assignment() {
        let net = CurbNetwork::new(&internet2(), CurbConfig::default()).unwrap();
        let genesis = net.blockchain().block_at(0).unwrap();
        assert_eq!(genesis.txs.len(), 1);
        // The record decodes back to the epoch's groups.
        let mut buf = genesis.txs[0].config.as_slice();
        match ConfigData::decode(&mut buf).expect("valid init record") {
            ConfigData::NewAssignment { groups } => {
                for (i, g) in groups.iter().enumerate() {
                    let expected: Vec<usize> =
                        net.epoch().assignment.group(i).iter().copied().collect();
                    assert_eq!(g, &expected, "switch {i}");
                }
            }
            other => panic!("unexpected genesis config {other:?}"),
        }
    }
}

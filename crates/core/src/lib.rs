//! The Curb protocol: a trusted and scalable group-based SDN control
//! plane (ICDCS 2022).
//!
//! Curb organises SDN controllers into groups of `3f + 1`, each
//! governing a set of switches. Flow-table updates and controller
//! reassignments are agreed in two stages — intra-group PBFT, then a
//! final committee PBFT — and recorded on a permissioned blockchain,
//! yielding byzantine fault tolerance, verifiability and traceability
//! with only `O(N)` messages per round.
//!
//! This crate implements the protocol end to end on top of the
//! workspace substrates:
//!
//! * [`CurbNetwork`] — Step 0 initialisation (key generation, the OP
//!   controller assignment, genesis block) plus the per-round driver
//!   (Steps 1–4 of the paper's workflow).
//! * [`CurbConfig`] / [`PlaneMode`] — paper-faithful defaults; the flat
//!   BFT baseline used by the Theorem 1 comparison is one enum variant
//!   away.
//! * [`ControllerBehavior`] — byzantine fault injection (silent and
//!   lazy controllers, the paper's experiments ❶–❸).
//! * [`Report`] / [`RoundReport`] — latency, throughput, message and
//!   PDL metrics matching the evaluation figures.
//!
//! # Examples
//!
//! ```rust
//! use curb_core::{ControllerBehavior, CurbConfig, CurbNetwork};
//! use curb_graph::internet2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = internet2();
//! let mut net = CurbNetwork::new(&topo, CurbConfig::default())?;
//!
//! // A byzantine group leader stops responding...
//! let victim = net.epoch().groups[0].leader();
//! net.set_controller_behavior(victim, ControllerBehavior::Silent);
//! let report = net.run_rounds(8);
//!
//! // ...and is eventually detected and reassigned away.
//! assert!(report.first_reassignment_round().is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controller;
pub mod epoch;
pub mod ids;
pub mod metrics;
pub mod msg;
pub mod network;
pub mod payload;
pub mod round;
pub mod shared;
pub mod switch;

pub use config::{CurbConfig, PlaneMode};
pub use epoch::{Epoch, Group};
pub use ids::{ControllerId, GroupId, NodePlan, SwitchId};
pub use metrics::{Report, RoundReport};
pub use msg::CurbMsg;
pub use network::{CurbNetwork, CurbNode, SetupError};
pub use payload::{
    decode_block, encode_block, BlockPayload, ConfigData, FlowRuleSpec, ProtoTx, ReqKind,
    RequestKey, RequestRecord, SignedRequest, TxListPayload,
};
pub use round::{Audit, EvidenceBook, ReplyMatcher, ReplyOutcome};
pub use shared::{ControllerBehavior, Shared};
pub use switch::{ReqOutcome, SwitchActor};

//! The OP solver: exact branch-and-bound over controller usage with a
//! min-cost-flow assignment subsolver.
//!
//! This replaces the Gurobi optimiser of the paper's artifact. The
//! search branches on the usage variables `x_j` (include/exclude a
//! controller), pruning with a covering lower bound; whenever the
//! included set can cover every switch, the concrete link assignment
//! `A_ij` is solved:
//!
//! * **exactly, by min-cost flow**, when load is uniform and the
//!   quadratic C2C constraint is off (the configuration used by most of
//!   the paper's experiments), or
//! * **by cost-ordered backtracking** when C1.4/C2.4 is active or load
//!   is non-uniform — the same regime in which the paper reports the
//!   large IQCP time overhead.

use crate::assignment::Assignment;
use crate::flow::MinCostFlow;
use crate::model::CapModel;
use std::time::{Duration, Instant};

/// Which objective function the solver minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Trivial controller reassignment `[O2]`: minimise `Σ x_j`.
    #[default]
    Tcr,
    /// Least-movement controller reassignment `[O3]`: minimise
    /// `Σ x_j + Σ |A_ij − a_ij|` (requires a previous assignment).
    Lcr,
}

/// Options controlling a [`solve`] call.
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Objective function.
    pub objective: Objective,
    /// Previous assignment `a_ij`, required by [`Objective::Lcr`] and
    /// used for move accounting in either mode.
    pub previous: Option<Assignment>,
    /// Branch-and-bound node budget; `0` means the default (2 million).
    pub node_limit: u64,
    /// Tie-break seed: permutes equally-attractive branching choices so
    /// the "random and deterministic" behaviour of the paper's basic
    /// OP() is reproducible per seed.
    pub seed: u64,
}

/// Search statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound nodes visited.
    pub nodes: u64,
    /// Assignment subproblems solved.
    pub leaf_evals: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// `false` if the node budget was exhausted (best-found returned).
    pub optimal: bool,
}

/// A solver result.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The controller groups.
    pub assignment: Assignment,
    /// Number of controllers in use.
    pub used: usize,
    /// `(removed, added)` links relative to `options.previous`, if one
    /// was supplied.
    pub moves: Option<(usize, usize)>,
    /// The minimised objective value (`used`, plus `removed + added`
    /// under LCR).
    pub objective_value: u64,
    /// Search statistics.
    pub stats: SolveStats,
}

/// Errors from [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// [`Objective::Lcr`] was requested without
    /// [`SolveOptions::previous`].
    MissingPrevious,
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "no feasible assignment exists"),
            SolveError::MissingPrevious => {
                write!(f, "LCR objective requires a previous assignment")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves a CAP instance.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] when the constraints admit no
/// assignment, and [`SolveError::MissingPrevious`] when LCR is requested
/// without a previous assignment.
///
/// # Examples
///
/// ```rust
/// use curb_assign::{solve, CapModel, SolveOptions};
///
/// let mut model = CapModel::new(4, 6);
/// model.set_fault_tolerance(1); // groups of 4
/// let solution = solve(&model, &SolveOptions::default())?;
/// assert_eq!(solution.used, 4); // 4 controllers can cover everything
/// assert!(solution.assignment.check(&model).is_ok());
/// # Ok::<(), curb_assign::SolveError>(())
/// ```
pub fn solve(model: &CapModel, options: &SolveOptions) -> Result<Solution, SolveError> {
    let start = Instant::now();
    if options.objective == Objective::Lcr && options.previous.is_none() {
        return Err(SolveError::MissingPrevious);
    }
    if model.obviously_infeasible() {
        return Err(SolveError::Infeasible);
    }
    let mut search = Search::new(model, options);
    search.run();
    let elapsed = start.elapsed();
    let stats = SolveStats {
        nodes: search.nodes,
        leaf_evals: search.leaf_evals,
        elapsed,
        optimal: !search.hit_limit,
    };
    match search.best {
        Some((objective_value, assignment)) => {
            let used = assignment.used_count();
            let moves = options.previous.as_ref().map(|p| p.moves_to(&assignment));
            Ok(Solution {
                assignment,
                used,
                moves,
                objective_value,
                stats,
            })
        }
        None => Err(SolveError::Infeasible),
    }
}

/// Move-versus-usage weight: O3 weighs one changed link equal to one
/// used controller.
const MOVE_WEIGHT: u64 = 1;

struct Search<'a> {
    model: &'a CapModel,
    options: &'a SolveOptions,
    /// Branchable controllers in branching order.
    order: Vec<usize>,
    /// Candidate controllers per switch.
    cands: Vec<Vec<usize>>,
    /// Switches that list controller `j` as a candidate.
    covers: Vec<Vec<usize>>,
    included: Vec<bool>,
    decided: Vec<bool>,
    included_count: u64,
    /// `B_i − pins_i − |included ∩ cands_i|` (may go negative).
    deficits: Vec<i64>,
    /// `|(included ∪ undecided) ∩ cands_i|` + pins.
    avail: Vec<i64>,
    /// `|(included ∪ undecided) ∩ cands_i ∩ prev_i|`: how many of switch
    /// `i`'s previous links can still be kept (drives the LCR
    /// must-add-links bound).
    avail_prev: Vec<i64>,
    /// Previous links to decided-excluded controllers (forced removals,
    /// a valid LCR lower-bound term).
    forced_removals: u64,
    best: Option<(u64, Assignment)>,
    nodes: u64,
    leaf_evals: u64,
    hit_limit: bool,
    node_limit: u64,
    /// Total load the assignment must place (`Σ B_i · Q_i`).
    total_load: u64,
    /// Load capacity currently included (`Σ_{j included} C_j`).
    included_capacity: u64,
}

impl<'a> Search<'a> {
    fn new(model: &'a CapModel, options: &'a SolveOptions) -> Self {
        let n_c = model.n_controllers();
        let n_s = model.n_switches();
        let cands: Vec<Vec<usize>> = (0..n_s).map(|i| model.candidates(i)).collect();
        let mut covers: Vec<Vec<usize>> = vec![Vec::new(); n_c];
        for (i, cs) in cands.iter().enumerate() {
            for &j in cs {
                covers[j].push(i);
            }
        }
        let mut included = vec![false; n_c];
        let mut decided = vec![false; n_c];
        // Pins are forced-in; excluded and uncovering controllers are
        // forced-out.
        for j in 0..n_c {
            if model.excluded[j] || covers[j].is_empty() {
                decided[j] = true;
            }
        }
        let mut included_count = 0;
        for &pin in model.leader_pins.iter().flatten() {
            if !decided[pin] && !included[pin] {
                included[pin] = true;
                decided[pin] = true;
                included_count += 1;
            }
        }
        let mut deficits: Vec<i64> = (0..n_s).map(|i| model.group_size[i] as i64).collect();
        let mut avail = vec![0i64; n_s];
        let mut avail_prev = vec![0i64; n_s];
        for (i, cs) in cands.iter().enumerate() {
            for &j in cs {
                if included[j] || !decided[j] {
                    avail[i] += 1;
                    if options.previous.as_ref().is_some_and(|p| p.contains(i, j)) {
                        avail_prev[i] += 1;
                    }
                }
                if included[j] {
                    deficits[i] -= 1;
                }
            }
        }
        // Branch order: coverage-descending, seeded tie-break.
        let mut order: Vec<usize> = (0..n_c).filter(|&j| !decided[j]).collect();
        let tie: Vec<u64> = (0..n_c)
            .map(|j| splitmix(options.seed ^ (j as u64).wrapping_mul(0x9E37_79B9)))
            .collect();
        order.sort_by_key(|&j| (std::cmp::Reverse(covers[j].len()), tie[j]));
        let node_limit = if options.node_limit == 0 {
            2_000_000
        } else {
            options.node_limit
        };
        let total_load: u64 = (0..n_s)
            .map(|i| model.group_size[i] as u64 * model.load[i] as u64)
            .sum();
        let included_capacity: u64 = (0..n_c)
            .filter(|&j| included[j])
            .map(|j| model.capacity[j] as u64)
            .sum();
        Search {
            model,
            options,
            order,
            cands,
            covers,
            included,
            decided,
            included_count,
            deficits,
            avail,
            avail_prev,
            forced_removals: 0,
            best: None,
            nodes: 0,
            leaf_evals: 0,
            hit_limit: false,
            node_limit,
            total_load,
            included_capacity,
        }
    }

    fn run(&mut self) {
        self.dfs(0, true);
    }

    fn lower_bound(&self) -> u64 {
        let max_deficit = self.deficits.iter().copied().max().unwrap_or(0).max(0) as u64;
        // Capacity bound: however controllers are chosen, the included
        // set plus extras must offer `total_load` capacity.
        let capacity_extra = if self.included_capacity < self.total_load {
            let shortfall = self.total_load - self.included_capacity;
            let max_free_cap = self
                .order
                .iter()
                .filter(|&&j| !self.decided[j])
                .map(|&j| self.model.capacity[j] as u64)
                .max()
                .unwrap_or(0);
            if max_free_cap == 0 {
                u64::MAX / 4 // cannot be satisfied: prune
            } else {
                shortfall.div_ceil(max_free_cap)
            }
        } else {
            0
        };
        self.included_count
            + max_deficit.max(capacity_extra)
            + MOVE_WEIGHT * self.lcr_removal_bound()
    }

    /// LCR move bound: links to decided-excluded controllers must be
    /// removed, and group slots with too few surviving previous
    /// candidates must be filled with *new* links.
    fn lcr_removal_bound(&self) -> u64 {
        if self.options.objective != Objective::Lcr {
            return 0;
        }
        let must_add: i64 = self
            .avail_prev
            .iter()
            .enumerate()
            .map(|(i, &ap)| (self.model.group_size[i] as i64 - ap).max(0))
            .sum();
        self.forced_removals + must_add as u64
    }

    fn dfs(&mut self, pos: usize, just_included: bool) {
        self.dfs_inner(pos, just_included, false)
    }

    fn dfs_inner(&mut self, pos: usize, just_included: bool, mut covered_feasible: bool) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.hit_limit = true;
            return;
        }
        // Infeasibility: some switch cannot reach its group size even if
        // every undecided candidate joins.
        for i in 0..self.avail.len() {
            if self.avail[i] < self.model.group_size[i] as i64 {
                return;
            }
        }
        if let Some((best, _)) = &self.best {
            if self.lower_bound() >= *best {
                return;
            }
        }
        let covered = self.deficits.iter().all(|&d| d <= 0);
        if covered && just_included {
            let improved = self.evaluate_leaf();
            // Under TCR any superset costs strictly more, so the branch
            // is closed once a feasible leaf exists here.
            if improved && self.options.objective == Objective::Tcr {
                return;
            }
            if improved {
                covered_feasible = true;
            }
        }
        if pos >= self.order.len() {
            return;
        }
        let j = self.order[pos];
        // Include branch. Once a feasible covering leaf exists in this
        // branch, including a controller with no previous links cannot
        // reduce moves (it only creates new links) — it strictly
        // worsens the LCR objective, so skip it.
        let useless_extra = covered_feasible && self.prev_links_of(j) == 0;
        if !useless_extra {
            self.included[j] = true;
            self.decided[j] = true;
            self.included_count += 1;
            self.included_capacity += self.model.capacity[j] as u64;
            for idx in 0..self.covers[j].len() {
                let i = self.covers[j][idx];
                self.deficits[i] -= 1;
            }
            self.dfs_inner(pos + 1, true, covered_feasible);
            self.included[j] = false;
            self.included_count -= 1;
            self.included_capacity -= self.model.capacity[j] as u64;
            for idx in 0..self.covers[j].len() {
                let i = self.covers[j][idx];
                self.deficits[i] += 1;
            }
        }
        // Exclude branch.
        let removal_delta = self.prev_links_of(j);
        self.forced_removals += removal_delta;
        let is_prev = |search: &Self, i: usize| {
            search
                .options
                .previous
                .as_ref()
                .is_some_and(|p| p.contains(i, j))
        };
        for idx in 0..self.covers[j].len() {
            let i = self.covers[j][idx];
            self.avail[i] -= 1;
            if is_prev(self, i) {
                self.avail_prev[i] -= 1;
            }
        }
        self.dfs_inner(pos + 1, false, covered_feasible);
        for idx in 0..self.covers[j].len() {
            let i = self.covers[j][idx];
            self.avail[i] += 1;
            if is_prev(self, i) {
                self.avail_prev[i] += 1;
            }
        }
        self.forced_removals -= removal_delta;
        self.decided[j] = false;
    }

    fn prev_links_of(&self, j: usize) -> u64 {
        match &self.options.previous {
            Some(prev) => (0..self.model.n_switches())
                .filter(|&i| prev.contains(i, j))
                .count() as u64,
            None => 0,
        }
    }

    /// Solves the link-assignment subproblem for the current included
    /// set; updates the incumbent. Returns whether a feasible leaf was
    /// found.
    fn evaluate_leaf(&mut self) -> bool {
        self.leaf_evals += 1;
        let assignment = if self.model.uniform_load() && self.model.max_cc_delay.is_none() {
            self.flow_assign()
        } else {
            self.backtrack_assign()
        };
        let Some(assignment) = assignment else {
            return false;
        };
        debug_assert!(assignment.check(self.model).is_ok());
        let mut cost = assignment.used_count() as u64;
        if self.options.objective == Objective::Lcr {
            let prev = self.options.previous.as_ref().expect("validated in solve");
            let (removed, added) = prev.moves_to(&assignment);
            cost += MOVE_WEIGHT * (removed + added) as u64;
        }
        if self.best.as_ref().is_none_or(|(b, _)| cost < *b) {
            self.best = Some((cost, assignment));
        }
        true
    }

    /// Per-link cost used by both subsolvers: LCR strongly prefers
    /// reusing previous links; both prefer nearby controllers as a
    /// deterministic tie-break. Distance is quantised to 5 ms buckets
    /// with the controller id as the finest tie-break, so co-located
    /// switches choose *identical* controller groups — keeping the
    /// number of distinct groups (and thus parallel PBFT instances)
    /// small, as the paper's group-based design intends.
    fn edge_cost(&self, i: usize, j: usize) -> i64 {
        let bucket = (self.model.cs_delay[i][j] / 5.0).round() as i64;
        let distance_cost = bucket * 1_000 + j as i64;
        match self.options.objective {
            Objective::Tcr => distance_cost,
            Objective::Lcr => {
                let prev = self.options.previous.as_ref().expect("validated in solve");
                let base = if prev.contains(i, j) {
                    -1_000_000_000
                } else {
                    1_000_000_000
                };
                base + distance_cost
            }
        }
    }

    /// Exact assignment by min-cost flow (uniform load, no C2C).
    fn flow_assign(&self) -> Option<Assignment> {
        let n_s = self.model.n_switches();
        let n_c = self.model.n_controllers();
        let unit = self.model.load.first().copied().unwrap_or(1).max(1) as u64;
        let source = 0;
        let sink = 1 + n_s + n_c;
        let switch_node = |i: usize| 1 + i;
        let ctrl_node = |j: usize| 1 + n_s + j;
        let mut net = MinCostFlow::new(sink + 1);
        let mut want = 0i64;
        // Controller slots, reduced by pinned-leader consumption.
        let mut slots: Vec<i64> = (0..n_c)
            .map(|j| ((self.model.capacity[j] as u64 / unit).min(u32::MAX as u64)) as i64)
            .collect();
        for (i, pin) in self.model.leader_pins.iter().enumerate() {
            if let Some(l) = *pin {
                slots[l] -= 1;
                if slots[l] < 0 {
                    return None;
                }
                let _ = i;
            }
        }
        let mut link_arcs = Vec::new();
        for i in 0..n_s {
            let pin = self.model.leader_pins[i];
            let demand = self.model.group_size[i] as i64 - pin.is_some() as i64;
            if demand < 0 {
                continue;
            }
            want += demand;
            net.add_arc(source, switch_node(i), demand, 0);
            for &j in &self.cands[i] {
                if !self.included[j] || Some(j) == pin {
                    continue;
                }
                let arc = net.add_arc(switch_node(i), ctrl_node(j), 1, self.edge_cost(i, j));
                link_arcs.push((i, j, arc));
            }
        }
        for (j, &s) in slots.iter().enumerate() {
            if self.included[j] || self.model.leader_pins.iter().flatten().any(|&l| l == j) {
                net.add_arc(ctrl_node(j), sink, s.max(0), 0);
            }
        }
        let (flow, _) = net.run(source, sink, want);
        if flow < want {
            return None;
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_s];
        for (i, pin) in self.model.leader_pins.iter().enumerate() {
            if let Some(l) = *pin {
                groups[i].push(l);
            }
        }
        for (i, j, arc) in link_arcs {
            if net.flow_on(arc) > 0 {
                groups[i].push(j);
            }
        }
        Some(Assignment::from_groups(groups, n_c))
    }

    /// Backtracking assignment: handles the quadratic C2C constraint and
    /// non-uniform load. Subsets are explored in cost order; the first
    /// complete solution is returned (cost-greedy with backtracking).
    fn backtrack_assign(&self) -> Option<Assignment> {
        let n_s = self.model.n_switches();
        let n_c = self.model.n_controllers();
        // Per-switch feasible candidate pools (included, compatible with
        // the pinned leader if any).
        let mut pools: Vec<Vec<usize>> = Vec::with_capacity(n_s);
        for i in 0..n_s {
            let pin = self.model.leader_pins[i];
            let pool: Vec<usize> = self.cands[i]
                .iter()
                .copied()
                .filter(|&j| self.included[j] && Some(j) != pin)
                .filter(|&j| pin.is_none_or(|l| self.model.compatible(j, l)))
                .collect();
            pools.push(pool);
        }
        // Most-constrained switch first.
        let mut order: Vec<usize> = (0..n_s).collect();
        order.sort_by_key(|&i| pools[i].len());
        let mut remaining: Vec<i64> = self.model.capacity.iter().map(|&c| c as i64).collect();
        for (i, pin) in self.model.leader_pins.iter().enumerate() {
            if let Some(l) = *pin {
                remaining[l] -= self.model.load[i] as i64;
                if remaining[l] < 0 {
                    return None;
                }
            }
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_s];
        // Step budget: a time-limited IQCP solve, like the paper's
        // Gurobi runs. Exhaustion fails the leaf; other leaves still
        // provide incumbents.
        let mut budget: u64 = 500_000;
        if self.backtrack(&order, &pools, 0, &mut remaining, &mut groups, &mut budget) {
            for (i, pin) in self.model.leader_pins.iter().enumerate() {
                if let Some(l) = *pin {
                    groups[i].push(l);
                }
            }
            Some(Assignment::from_groups(groups, n_c))
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        &self,
        order: &[usize],
        pools: &[Vec<usize>],
        depth: usize,
        remaining: &mut Vec<i64>,
        groups: &mut Vec<Vec<usize>>,
        budget: &mut u64,
    ) -> bool {
        let Some(&i) = order.get(depth) else {
            return true;
        };
        if *budget == 0 {
            return false;
        }
        let pin = self.model.leader_pins[i];
        let need = self.model.group_size[i].saturating_sub(pin.is_some() as usize);
        let load = self.model.load[i] as i64;
        let mut subsets = Vec::new();
        let mut current = Vec::new();
        self.enumerate_subsets(&pools[i], need, 0, &mut current, &mut subsets);
        // Cost-ordered: cheapest subset first.
        subsets.sort_by_key(|s| s.iter().map(|&j| self.edge_cost(i, j)).sum::<i64>());
        for subset in subsets {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            if subset.iter().any(|&j| remaining[j] < load) {
                continue;
            }
            for &j in &subset {
                remaining[j] -= load;
            }
            groups[i] = subset.clone();
            if self.backtrack(order, pools, depth + 1, remaining, groups, budget) {
                return true;
            }
            for &j in &subset {
                remaining[j] += load;
            }
            groups[i].clear();
        }
        false
    }

    /// Enumerates pairwise-compatible subsets of `pool` of size `need`
    /// (bounded by an internal cap to keep the quadratic case tractable,
    /// mirroring a time-limited IQCP solve).
    fn enumerate_subsets(
        &self,
        pool: &[usize],
        need: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        const SUBSET_CAP: usize = 4096;
        if out.len() >= SUBSET_CAP {
            return;
        }
        if current.len() == need {
            out.push(current.clone());
            return;
        }
        if pool.len() - start < need - current.len() {
            return;
        }
        for idx in start..pool.len() {
            let j = pool[idx];
            if current.iter().all(|&k| self.model.compatible(k, j)) {
                current.push(j);
                self.enumerate_subsets(pool, need, idx + 1, current, out);
                current.pop();
            }
        }
    }
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solved(model: &CapModel) -> Solution {
        solve(model, &SolveOptions::default()).expect("feasible")
    }

    #[test]
    fn minimal_cover_found() {
        // 4 switches, 6 controllers, groups of 4: exactly 4 controllers
        // suffice.
        let mut m = CapModel::new(4, 6);
        m.set_fault_tolerance(1);
        let s = solved(&m);
        assert_eq!(s.used, 4);
        assert!(s.assignment.check(&m).is_ok());
        assert!(s.stats.optimal);
    }

    #[test]
    fn distance_filter_forces_more_controllers() {
        // Two switch clusters, each in range of a disjoint controller
        // triple; groups of 2 ⇒ must use controllers from both triples.
        let mut m = CapModel::new(2, 6);
        m.group_size = vec![2, 2];
        let far = 100.0;
        m.set_cs_delay(vec![
            vec![1.0, 1.0, 1.0, far, far, far],
            vec![far, far, far, 1.0, 1.0, 1.0],
        ])
        .set_max_cs_delay(10.0);
        let s = solved(&m);
        assert_eq!(s.used, 4);
        for (i, j) in s.assignment.links() {
            assert!(m.cs_delay[i][j] <= 10.0);
        }
    }

    #[test]
    fn infeasible_when_not_enough_candidates() {
        let mut m = CapModel::new(1, 3);
        m.set_fault_tolerance(1); // needs 4
        assert!(matches!(
            solve(&m, &SolveOptions::default()),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn capacity_forces_spread() {
        // 4 switches, groups of 1, but each controller can host at most
        // 2 switches ⇒ at least 2 controllers.
        let mut m = CapModel::new(4, 4);
        m.group_size = vec![1; 4];
        m.capacity = vec![2; 4];
        let s = solved(&m);
        assert_eq!(s.used, 2);
        assert!(s.assignment.check(&m).is_ok());
    }

    #[test]
    fn capacity_infeasible_detected() {
        let mut m = CapModel::new(3, 1);
        m.group_size = vec![1; 3];
        m.capacity = vec![2];
        assert!(matches!(
            solve(&m, &SolveOptions::default()),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn excluded_controllers_never_used() {
        let mut m = CapModel::new(2, 6);
        m.group_size = vec![2, 2];
        m.exclude(0).exclude(1);
        let s = solved(&m);
        assert!(!s.assignment.used_controllers().contains(&0));
        assert!(!s.assignment.used_controllers().contains(&1));
    }

    #[test]
    fn leader_pins_respected() {
        let mut m = CapModel::new(2, 6);
        m.group_size = vec![2, 2];
        m.pin_leader(0, 5).pin_leader(1, 5);
        let s = solved(&m);
        assert!(s.assignment.contains(0, 5));
        assert!(s.assignment.contains(1, 5));
    }

    #[test]
    fn lcr_requires_previous() {
        let m = CapModel::new(1, 4);
        let opts = SolveOptions {
            objective: Objective::Lcr,
            ..SolveOptions::default()
        };
        assert!(matches!(solve(&m, &opts), Err(SolveError::MissingPrevious)));
    }

    #[test]
    fn lcr_prefers_previous_links() {
        // 1 switch, group of 2, 4 interchangeable controllers. LCR must
        // keep the previous {2, 3}.
        let mut m = CapModel::new(1, 4);
        m.group_size = vec![2];
        let prev = Assignment::from_groups(vec![vec![2, 3]], 4);
        let opts = SolveOptions {
            objective: Objective::Lcr,
            previous: Some(prev),
            ..SolveOptions::default()
        };
        let s = solve(&m, &opts).unwrap();
        assert_eq!(s.moves, Some((0, 0)));
        assert!(s.assignment.contains(0, 2) && s.assignment.contains(0, 3));
    }

    #[test]
    fn lcr_moves_minimally_after_exclusion() {
        // Previous {0, 1}; controller 0 turns byzantine. LCR keeps 1 and
        // adds exactly one new controller.
        let mut m = CapModel::new(1, 4);
        m.group_size = vec![2];
        m.exclude(0);
        let prev = Assignment::from_groups(vec![vec![0, 1]], 4);
        let opts = SolveOptions {
            objective: Objective::Lcr,
            previous: Some(prev),
            ..SolveOptions::default()
        };
        let s = solve(&m, &opts).unwrap();
        assert_eq!(s.moves, Some((1, 1)));
        assert!(s.assignment.contains(0, 1));
    }

    #[test]
    fn tcr_and_lcr_use_same_controller_count() {
        // The paper's Fig. 7 observation on a small instance.
        let mut m = CapModel::new(3, 8);
        m.group_size = vec![2; 3];
        let prev = Assignment::from_groups(vec![vec![0, 1], vec![0, 1], vec![0, 1]], 8);
        m.exclude(0);
        let tcr = solve(
            &m,
            &SolveOptions {
                objective: Objective::Tcr,
                previous: Some(prev.clone()),
                ..SolveOptions::default()
            },
        )
        .unwrap();
        let lcr = solve(
            &m,
            &SolveOptions {
                objective: Objective::Lcr,
                previous: Some(prev.clone()),
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert_eq!(tcr.used, lcr.used);
        // And LCR never moves more than TCR.
        let (r1, a1) = prev.moves_to(&tcr.assignment);
        let (r2, a2) = prev.moves_to(&lcr.assignment);
        assert!(r2 + a2 <= r1 + a1);
    }

    #[test]
    fn cc_constraint_respected() {
        // Controllers 0/1 are far apart; a group of 2 must avoid the
        // {0,1} pairing.
        let mut m = CapModel::new(1, 3);
        m.group_size = vec![2];
        let mut cc = vec![vec![0.0; 3]; 3];
        cc[0][1] = 50.0;
        cc[1][0] = 50.0;
        m.set_cc_delay(cc).set_max_cc_delay(Some(10.0));
        let s = solved(&m);
        let g = s.assignment.group(0);
        assert!(!(g.contains(&0) && g.contains(&1)));
        assert!(s.assignment.check(&m).is_ok());
    }

    #[test]
    fn cc_constraint_can_make_infeasible() {
        let mut m = CapModel::new(1, 2);
        m.group_size = vec![2];
        let mut cc = vec![vec![0.0; 2]; 2];
        cc[0][1] = 50.0;
        cc[1][0] = 50.0;
        m.set_cc_delay(cc).set_max_cc_delay(Some(10.0));
        assert!(matches!(
            solve(&m, &SolveOptions::default()),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn non_uniform_load_uses_backtracker() {
        let mut m = CapModel::new(2, 3);
        m.group_size = vec![1, 1];
        m.load = vec![3, 1];
        m.capacity = vec![3, 1, 0];
        let s = solved(&m);
        assert!(s.assignment.check(&m).is_ok());
        // Switch 0 (load 3) must land on controller 0.
        assert!(s.assignment.contains(0, 0));
    }

    #[test]
    fn seeds_are_deterministic() {
        let mut m = CapModel::new(4, 8);
        m.group_size = vec![2; 4];
        let opts = SolveOptions {
            seed: 42,
            ..SolveOptions::default()
        };
        let a = solve(&m, &opts).unwrap();
        let b = solve(&m, &opts).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn node_limit_marks_non_optimal_or_finishes() {
        let mut m = CapModel::new(6, 12);
        m.group_size = vec![3; 6];
        let opts = SolveOptions {
            node_limit: 3,
            ..SolveOptions::default()
        };
        match solve(&m, &opts) {
            Ok(s) => assert!(!s.stats.optimal || s.stats.nodes <= 3),
            Err(SolveError::Infeasible) => {} // budget too small to find anything
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut m = CapModel::new(2, 4);
        m.group_size = vec![2, 2];
        let s = solved(&m);
        assert!(s.stats.nodes > 0);
        assert!(s.stats.leaf_evals > 0);
        assert_eq!(s.objective_value, s.used as u64);
    }

    #[test]
    fn error_display() {
        assert!(!SolveError::Infeasible.to_string().is_empty());
        assert!(!SolveError::MissingPrevious.to_string().is_empty());
    }
}

//! The controller-assignment-problem (CAP) model.
//!
//! Mirrors the paper's optimisation programs `[O1/C1.1–C1.4]` (initial
//! assignment) and `[O2/C2.1–C2.6]` / `[O3]` (reassignment):
//!
//! * **C1.1** every switch `i` is governed by at least `B_i = 3f + 1`
//!   controllers;
//! * **C1.2** controller `j` carries at most `C_j` load, where switch
//!   `i` contributes `Q_i`;
//! * **C1.3** an assigned controller must be within `D_c,s` delay of its
//!   switch (with binary variables this fixes `A_ij = 0` for far pairs);
//! * **C1.4** (optional, quadratic) two controllers assigned to the same
//!   switch must be within `D_c,c` of each other;
//! * **C2.5** byzantine controllers are excluded entirely;
//! * **C2.6** group leaders are pinned (`A_ij = 1`).

/// A CAP instance.
///
/// Delays are expressed in milliseconds throughout, matching the
/// paper's `D_c,s` sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct CapModel {
    n_switches: usize,
    n_controllers: usize,
    /// `B_i`: required group size per switch.
    pub group_size: Vec<usize>,
    /// `Q_i`: load each switch puts on each assigned controller.
    pub load: Vec<u32>,
    /// `C_j`: total load capacity per controller.
    pub capacity: Vec<u32>,
    /// `d_ij` in ms, indexed `[switch][controller]`.
    pub cs_delay: Vec<Vec<f64>>,
    /// `d_jj'` in ms, indexed `[controller][controller]`.
    pub cc_delay: Vec<Vec<f64>>,
    /// `D_c,s`: max admissible controller-to-switch delay (ms).
    pub max_cs_delay: f64,
    /// `D_c,c`: max admissible controller-to-controller delay (ms);
    /// `None` drops constraint C1.4/C2.4 (as in most of the paper's
    /// experiments).
    pub max_cc_delay: Option<f64>,
    /// `C2.5`: controllers barred from use (byzantine).
    pub excluded: Vec<bool>,
    /// `C2.6`: per-switch pinned leader, if the leader constraint is on.
    pub leader_pins: Vec<Option<usize>>,
}

impl CapModel {
    /// Creates an instance with uniform defaults: `B_i = 4` (f = 1),
    /// `Q_i = 1`, ample capacity, all-zero delays (every pair in range)
    /// and no exclusions or pins.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_switches: usize, n_controllers: usize) -> Self {
        assert!(
            n_switches > 0 && n_controllers > 0,
            "dimensions must be positive"
        );
        CapModel {
            n_switches,
            n_controllers,
            group_size: vec![4; n_switches],
            load: vec![1; n_switches],
            capacity: vec![u32::MAX; n_controllers],
            cs_delay: vec![vec![0.0; n_controllers]; n_switches],
            cc_delay: vec![vec![0.0; n_controllers]; n_controllers],
            max_cs_delay: f64::INFINITY,
            max_cc_delay: None,
            excluded: vec![false; n_controllers],
            leader_pins: vec![None; n_switches],
        }
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.n_switches
    }

    /// Number of controllers.
    pub fn n_controllers(&self) -> usize {
        self.n_controllers
    }

    /// Sets every switch's group size to `3f + 1`.
    pub fn set_fault_tolerance(&mut self, f: usize) -> &mut Self {
        self.group_size = vec![3 * f + 1; self.n_switches];
        self
    }

    /// Sets the controller-to-switch delay matrix (ms).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn set_cs_delay(&mut self, d: Vec<Vec<f64>>) -> &mut Self {
        assert_eq!(d.len(), self.n_switches, "cs_delay rows");
        assert!(
            d.iter().all(|r| r.len() == self.n_controllers),
            "cs_delay cols"
        );
        self.cs_delay = d;
        self
    }

    /// Sets the controller-to-controller delay matrix (ms).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn set_cc_delay(&mut self, d: Vec<Vec<f64>>) -> &mut Self {
        assert_eq!(d.len(), self.n_controllers, "cc_delay rows");
        assert!(
            d.iter().all(|r| r.len() == self.n_controllers),
            "cc_delay cols"
        );
        self.cc_delay = d;
        self
    }

    /// Sets the `D_c,s` threshold (ms).
    pub fn set_max_cs_delay(&mut self, d: f64) -> &mut Self {
        self.max_cs_delay = d;
        self
    }

    /// Enables constraint C1.4/C2.4 with threshold `d` (ms), or disables
    /// it with `None`.
    pub fn set_max_cc_delay(&mut self, d: Option<f64>) -> &mut Self {
        self.max_cc_delay = d;
        self
    }

    /// Marks controller `j` as byzantine (constraint C2.5).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn exclude(&mut self, j: usize) -> &mut Self {
        self.excluded[j] = true;
        self
    }

    /// Pins controller `j` as switch `i`'s leader (constraint C2.6).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range, or if `j` is excluded or
    /// out of `D_c,s` range of `i`.
    pub fn pin_leader(&mut self, i: usize, j: usize) -> &mut Self {
        assert!(
            i < self.n_switches && j < self.n_controllers,
            "index out of range"
        );
        assert!(!self.excluded[j], "cannot pin an excluded controller");
        assert!(
            self.cs_delay[i][j] <= self.max_cs_delay,
            "pinned leader violates D_c,s"
        );
        self.leader_pins[i] = Some(j);
        self
    }

    /// Controllers admissible for switch `i`: not excluded and within
    /// `D_c,s` (constraint C1.3 as variable fixing).
    pub fn candidates(&self, i: usize) -> Vec<usize> {
        (0..self.n_controllers)
            .filter(|&j| !self.excluded[j] && self.cs_delay[i][j] <= self.max_cs_delay)
            .collect()
    }

    /// Whether controllers `j` and `k` may co-govern a switch under the
    /// C2C constraint.
    pub fn compatible(&self, j: usize, k: usize) -> bool {
        match self.max_cc_delay {
            None => true,
            Some(d) => j == k || self.cc_delay[j][k] <= d,
        }
    }

    /// Whether every switch's load is identical (enables the exact
    /// flow-based assignment subsolver).
    pub fn uniform_load(&self) -> bool {
        self.load.windows(2).all(|w| w[0] == w[1])
    }

    /// Cheap necessary feasibility conditions; the solver reports
    /// definitive infeasibility.
    pub fn obviously_infeasible(&self) -> bool {
        (0..self.n_switches).any(|i| {
            let cands = self.candidates(i);
            if cands.len() < self.group_size[i] {
                return true;
            }
            match self.leader_pins[i] {
                Some(l) => !cands.contains(&l),
                None => false,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_permissive() {
        let m = CapModel::new(3, 5);
        assert_eq!(m.candidates(0), vec![0, 1, 2, 3, 4]);
        assert!(m.compatible(0, 4));
        assert!(m.uniform_load());
        assert!(!m.obviously_infeasible());
    }

    #[test]
    fn cs_threshold_filters_candidates() {
        let mut m = CapModel::new(1, 3);
        m.set_cs_delay(vec![vec![1.0, 5.0, 9.0]])
            .set_max_cs_delay(5.0);
        assert_eq!(m.candidates(0), vec![0, 1]);
    }

    #[test]
    fn exclusion_filters_candidates() {
        let mut m = CapModel::new(1, 3);
        m.exclude(1);
        assert_eq!(m.candidates(0), vec![0, 2]);
    }

    #[test]
    fn cc_threshold_controls_compatibility() {
        let mut m = CapModel::new(1, 2);
        m.set_cc_delay(vec![vec![0.0, 7.0], vec![7.0, 0.0]]);
        assert!(m.compatible(0, 1), "constraint off by default");
        m.set_max_cc_delay(Some(5.0));
        assert!(!m.compatible(0, 1));
        m.set_max_cc_delay(Some(10.0));
        assert!(m.compatible(0, 1));
    }

    #[test]
    fn fault_tolerance_sets_group_size() {
        let mut m = CapModel::new(2, 16);
        m.set_fault_tolerance(4);
        assert_eq!(m.group_size, vec![13, 13]);
    }

    #[test]
    fn infeasible_when_too_few_candidates() {
        let mut m = CapModel::new(1, 3);
        m.set_fault_tolerance(1); // needs 4 > 3 controllers
        assert!(m.obviously_infeasible());
    }

    #[test]
    #[should_panic(expected = "violates D_c,s")]
    fn pin_out_of_range_leader_panics() {
        let mut m = CapModel::new(1, 2);
        m.set_cs_delay(vec![vec![1.0, 99.0]]).set_max_cs_delay(5.0);
        m.pin_leader(0, 1);
    }

    #[test]
    #[should_panic(expected = "excluded")]
    fn pin_excluded_leader_panics() {
        let mut m = CapModel::new(1, 2);
        m.exclude(1);
        m.pin_leader(0, 1);
    }

    #[test]
    fn non_uniform_load_detected() {
        let mut m = CapModel::new(2, 4);
        m.load = vec![1, 3];
        assert!(!m.uniform_load());
    }
}

//! Controller-assignment optimisation (the paper's `OP()` solver).
//!
//! Curb assigns each switch a controller group by solving the
//! controller assignment problem (CAP), an 0-1 integer program the
//! paper hands to the Gurobi optimiser. This crate is the from-scratch
//! substitute:
//!
//! * [`CapModel`] — the CAP instance: group sizes `B_i = 3f + 1`, loads
//!   `Q_i`, capacities `C_j`, delay matrices and the `D_c,s` / `D_c,c`
//!   thresholds, byzantine exclusions (`C2.5`) and leader pins (`C2.6`).
//! * [`solve`] — exact branch-and-bound over controller usage with a
//!   min-cost-flow assignment subsolver (backtracking when the
//!   quadratic C2C constraint is active).
//! * [`Objective::Tcr`] / [`Objective::Lcr`] — the two reassignment
//!   objectives `[O2]` and `[O3]`.
//! * [`Assignment`] — result type with the paper's PDL metric
//!   ([`Assignment::pdl_to`]) and a full constraint checker
//!   ([`Assignment::check`]).
//!
//! # Examples
//!
//! ```rust
//! use curb_assign::{solve, CapModel, Objective, SolveOptions};
//!
//! // 4 switches, 8 controllers, tolerate f = 1 per group.
//! let mut model = CapModel::new(4, 8);
//! model.set_fault_tolerance(1);
//! let initial = solve(&model, &SolveOptions::default())?;
//!
//! // Controller 0 turns byzantine: reassign with least movement.
//! model.exclude(0);
//! let re = solve(&model, &SolveOptions {
//!     objective: Objective::Lcr,
//!     previous: Some(initial.assignment.clone()),
//!     ..SolveOptions::default()
//! })?;
//! let pdl = initial.assignment.pdl_to(&re.assignment);
//! assert!(pdl <= 1.0);
//! # Ok::<(), curb_assign::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
pub mod flow;
mod model;
mod solver;

pub use assignment::{Assignment, ConstraintViolation};
pub use model::CapModel;
pub use solver::{solve, Objective, Solution, SolveError, SolveOptions, SolveStats};

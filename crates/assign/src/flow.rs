//! Minimum-cost maximum-flow, used to solve the assignment subproblem
//! of the CAP once the set of enabled controllers is fixed.
//!
//! The implementation is successive shortest augmenting paths with
//! SPFA (costs may be negative on original arcs, e.g. "reusing an
//! existing link is cheaper than adding one" in the LCR objective; the
//! residual network never develops negative cycles because augmenting
//! always follows shortest paths).

/// An arc in the flow network.
#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    capacity: i64,
    original_capacity: i64,
    cost: i64,
    /// Index of the reverse arc in `to`'s adjacency list.
    rev: usize,
}

/// Handle to an arc added with [`MinCostFlow::add_arc`]; lets the caller
/// read back how much flow the arc carries after [`MinCostFlow::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcId {
    node: usize,
    index: usize,
}

/// A minimum-cost maximum-flow network over `n` nodes.
///
/// # Examples
///
/// ```rust
/// use curb_assign::flow::MinCostFlow;
///
/// // Two parallel unit arcs of costs 5 and 1; the cheap one is used
/// // first.
/// let mut net = MinCostFlow::new(2);
/// net.add_arc(0, 1, 1, 5);
/// net.add_arc(0, 1, 1, 1);
/// let (flow, cost) = net.run(0, 1, 1);
/// assert_eq!((flow, cost), (1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<Arc>>,
}

impl MinCostFlow {
    /// Creates an empty network over `n` nodes.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
        }
    }

    /// Adds a directed arc `from → to` with the given capacity and
    /// per-unit cost, returning a handle for flow read-back.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or capacity is negative.
    pub fn add_arc(&mut self, from: usize, to: usize, capacity: i64, cost: i64) -> ArcId {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "node out of range"
        );
        assert!(capacity >= 0, "capacity must be non-negative");
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(Arc {
            to,
            capacity,
            original_capacity: capacity,
            cost,
            rev: rev_from,
        });
        self.graph[to].push(Arc {
            to: from,
            capacity: 0,
            original_capacity: 0,
            cost: -cost,
            rev: rev_to,
        });
        ArcId {
            node: from,
            index: rev_to,
        }
    }

    /// Sends up to `want` units from `source` to `sink` along
    /// cheapest paths. Returns `(flow sent, total cost)`.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink`.
    pub fn run(&mut self, source: usize, sink: usize, want: i64) -> (i64, i64) {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.graph.len();
        let mut flow = 0i64;
        let mut cost = 0i64;
        while flow < want {
            // SPFA shortest path on residual costs.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            dist[source] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            in_queue[source] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for (i, arc) in self.graph[u].iter().enumerate() {
                    if arc.capacity > 0 && du + arc.cost < dist[arc.to] {
                        dist[arc.to] = du + arc.cost;
                        prev[arc.to] = Some((u, i));
                        if !in_queue[arc.to] {
                            queue.push_back(arc.to);
                            in_queue[arc.to] = true;
                        }
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break; // no augmenting path left
            }
            // Find bottleneck.
            let mut push = want - flow;
            let mut v = sink;
            while let Some((u, i)) = prev[v] {
                push = push.min(self.graph[u][i].capacity);
                v = u;
            }
            // Apply.
            let mut v = sink;
            while let Some((u, i)) = prev[v] {
                let rev = self.graph[u][i].rev;
                self.graph[u][i].capacity -= push;
                self.graph[v][rev].capacity += push;
                v = u;
            }
            flow += push;
            cost += push * dist[sink];
        }
        (flow, cost)
    }

    /// Units of flow currently carried by the arc `id`.
    pub fn flow_on(&self, id: ArcId) -> i64 {
        let arc = &self.graph[id.node][id.index];
        arc.original_capacity - arc.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut net = MinCostFlow::new(3);
        net.add_arc(0, 1, 4, 2);
        net.add_arc(1, 2, 4, 3);
        assert_eq!(net.run(0, 2, 4), (4, 20));
    }

    #[test]
    fn capacity_limits_flow() {
        let mut net = MinCostFlow::new(3);
        net.add_arc(0, 1, 2, 1);
        net.add_arc(1, 2, 10, 1);
        assert_eq!(net.run(0, 2, 5), (2, 4));
    }

    #[test]
    fn prefers_cheaper_path() {
        let mut net = MinCostFlow::new(4);
        net.add_arc(0, 1, 1, 10);
        net.add_arc(1, 3, 1, 10);
        net.add_arc(0, 2, 1, 1);
        net.add_arc(2, 3, 1, 1);
        let (flow, cost) = net.run(0, 3, 1);
        assert_eq!((flow, cost), (1, 2));
    }

    #[test]
    fn negative_cost_arcs_supported() {
        // Reusing an existing link is modelled as cost -1.
        let mut net = MinCostFlow::new(3);
        net.add_arc(0, 1, 1, -1);
        net.add_arc(0, 1, 1, 1);
        net.add_arc(1, 2, 2, 0);
        let (flow, cost) = net.run(0, 2, 2);
        assert_eq!((flow, cost), (2, 0)); // -1 + 1
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Classic case where the second augmentation must undo part of
        // the first.
        let mut net = MinCostFlow::new(4);
        net.add_arc(0, 1, 1, 1);
        net.add_arc(0, 2, 1, 5);
        net.add_arc(1, 2, 1, 1);
        net.add_arc(1, 3, 1, 5);
        net.add_arc(2, 3, 2, 1);
        let (flow, cost) = net.run(0, 3, 2);
        assert_eq!(flow, 2);
        // Optimal: 0-1-2-3 (3) and 0-2... capacity 2-3 is 2: 0-2-3 (6)
        // => total 9, or 0-1-3 (6) + 0-2-3 (6) = 12; best is 9.
        assert_eq!(cost, 9);
    }

    #[test]
    fn disconnected_sink_gets_zero_flow() {
        let mut net = MinCostFlow::new(3);
        net.add_arc(0, 1, 5, 1);
        assert_eq!(net.run(0, 2, 3), (0, 0));
    }

    #[test]
    fn bipartite_assignment_shape() {
        // 2 switches each need 1 controller; 2 controllers with 1 slot
        // each; costs force the cross assignment.
        // nodes: 0=src, 1..=2 switches, 3..=4 controllers, 5=sink
        let mut net = MinCostFlow::new(6);
        net.add_arc(0, 1, 1, 0);
        net.add_arc(0, 2, 1, 0);
        net.add_arc(1, 3, 1, 10);
        net.add_arc(1, 4, 1, 1);
        net.add_arc(2, 3, 1, 1);
        net.add_arc(2, 4, 1, 10);
        net.add_arc(3, 5, 1, 0);
        net.add_arc(4, 5, 1, 0);
        let (flow, cost) = net.run(0, 5, 2);
        assert_eq!((flow, cost), (2, 2));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_panics() {
        MinCostFlow::new(2).run(1, 1, 1);
    }
}

//! Assignment results and the PDL (percentage of dynamic links) metric.

use crate::model::CapModel;
use std::collections::BTreeSet;

/// A controller assignment: one controller group per switch.
///
/// # Examples
///
/// ```rust
/// use curb_assign::Assignment;
///
/// let a = Assignment::from_groups(vec![vec![0, 1], vec![1, 2]], 3);
/// assert_eq!(a.used_count(), 3);
/// assert_eq!(a.total_links(), 4);
/// assert!(a.contains(0, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    groups: Vec<BTreeSet<usize>>,
    n_controllers: usize,
}

/// A violated CAP constraint, reported by [`Assignment::check`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintViolation {
    /// C1.1: a switch's group is smaller than `B_i`.
    GroupTooSmall {
        /// The under-covered switch.
        switch: usize,
        /// Required group size.
        required: usize,
        /// Actual group size.
        actual: usize,
    },
    /// C1.2: a controller's load exceeds its capacity.
    OverCapacity {
        /// The overloaded controller.
        controller: usize,
    },
    /// C1.3: an assigned pair exceeds `D_c,s`.
    CsDelayExceeded {
        /// The switch of the offending link.
        switch: usize,
        /// The controller of the offending link.
        controller: usize,
    },
    /// C1.4: two co-assigned controllers exceed `D_c,c`.
    CcDelayExceeded {
        /// The switch whose group is incompatible.
        switch: usize,
        /// First controller of the incompatible pair.
        a: usize,
        /// Second controller of the incompatible pair.
        b: usize,
    },
    /// C2.5: an excluded (byzantine) controller is used.
    ExcludedUsed {
        /// The excluded controller.
        controller: usize,
    },
    /// C2.6: a pinned leader is missing from its switch's group.
    LeaderMissing {
        /// The switch whose leader pin is violated.
        switch: usize,
        /// The pinned leader.
        leader: usize,
    },
}

impl core::fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConstraintViolation::GroupTooSmall {
                switch,
                required,
                actual,
            } => write!(
                f,
                "switch {switch}: group size {actual} below required {required}"
            ),
            ConstraintViolation::OverCapacity { controller } => {
                write!(f, "controller {controller} over capacity")
            }
            ConstraintViolation::CsDelayExceeded { switch, controller } => {
                write!(f, "link ({switch},{controller}) exceeds D_c,s")
            }
            ConstraintViolation::CcDelayExceeded { switch, a, b } => {
                write!(f, "switch {switch}: controllers {a},{b} exceed D_c,c")
            }
            ConstraintViolation::ExcludedUsed { controller } => {
                write!(f, "excluded controller {controller} in use")
            }
            ConstraintViolation::LeaderMissing { switch, leader } => {
                write!(f, "switch {switch}: pinned leader {leader} missing")
            }
        }
    }
}

impl std::error::Error for ConstraintViolation {}

impl Assignment {
    /// Builds an assignment from per-switch controller lists.
    ///
    /// # Panics
    ///
    /// Panics if any controller index is `>= n_controllers`.
    pub fn from_groups(groups: Vec<Vec<usize>>, n_controllers: usize) -> Self {
        let groups: Vec<BTreeSet<usize>> = groups
            .into_iter()
            .map(|g| {
                let set: BTreeSet<usize> = g.into_iter().collect();
                assert!(
                    set.iter().all(|&j| j < n_controllers),
                    "controller index out of range"
                );
                set
            })
            .collect();
        Assignment {
            groups,
            n_controllers,
        }
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.groups.len()
    }

    /// Number of controllers in the universe (not the used count).
    pub fn n_controllers(&self) -> usize {
        self.n_controllers
    }

    /// The controller group of switch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn group(&self, i: usize) -> &BTreeSet<usize> {
        &self.groups[i]
    }

    /// Whether controller `j` governs switch `i`.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.groups.get(i).is_some_and(|g| g.contains(&j))
    }

    /// The set of controllers that govern at least one switch.
    pub fn used_controllers(&self) -> BTreeSet<usize> {
        self.groups.iter().flatten().copied().collect()
    }

    /// Number of controllers in use (`Σ x_j` in the paper's objective).
    pub fn used_count(&self) -> usize {
        self.used_controllers().len()
    }

    /// Total number of controller-switch links (`Σ A_ij`).
    pub fn total_links(&self) -> usize {
        self.groups.iter().map(BTreeSet::len).sum()
    }

    /// Iterates all `(switch, controller)` links.
    pub fn links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.groups
            .iter()
            .enumerate()
            .flat_map(|(i, g)| g.iter().map(move |&j| (i, j)))
    }

    /// Links removed and added going from `self` to `new`:
    /// `Σ |A_ij − a_ij|` split into its two parts.
    ///
    /// # Panics
    ///
    /// Panics if the two assignments have different dimensions.
    pub fn moves_to(&self, new: &Assignment) -> (usize, usize) {
        assert_eq!(self.groups.len(), new.groups.len(), "switch count mismatch");
        let mut removed = 0;
        let mut added = 0;
        for (old_g, new_g) in self.groups.iter().zip(&new.groups) {
            removed += old_g.difference(new_g).count();
            added += new_g.difference(old_g).count();
        }
        (removed, added)
    }

    /// The paper's PDL metric: `(removed + added) / (old links + added)`.
    ///
    /// Example from Section IV-B1: 30 links, 2 removed, 3 added ⇒
    /// `5 / 33 ≈ 15%`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn pdl_to(&self, new: &Assignment) -> f64 {
        let (removed, added) = self.moves_to(new);
        let denom = self.total_links() + added;
        if denom == 0 {
            return 0.0;
        }
        (removed + added) as f64 / denom as f64
    }

    /// Verifies every CAP constraint of `model` against this assignment.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConstraintViolation`] found.
    pub fn check(&self, model: &CapModel) -> Result<(), ConstraintViolation> {
        for (i, group) in self.groups.iter().enumerate() {
            if group.len() < model.group_size[i] {
                return Err(ConstraintViolation::GroupTooSmall {
                    switch: i,
                    required: model.group_size[i],
                    actual: group.len(),
                });
            }
            for &j in group {
                if model.excluded[j] {
                    return Err(ConstraintViolation::ExcludedUsed { controller: j });
                }
                if model.cs_delay[i][j] > model.max_cs_delay {
                    return Err(ConstraintViolation::CsDelayExceeded {
                        switch: i,
                        controller: j,
                    });
                }
            }
            for &a in group {
                for &b in group {
                    if a < b && !model.compatible(a, b) {
                        return Err(ConstraintViolation::CcDelayExceeded { switch: i, a, b });
                    }
                }
            }
            if let Some(leader) = model.leader_pins[i] {
                if !group.contains(&leader) {
                    return Err(ConstraintViolation::LeaderMissing { switch: i, leader });
                }
            }
        }
        // C1.2: capacity.
        let mut used: Vec<u64> = vec![0; self.n_controllers];
        for (i, group) in self.groups.iter().enumerate() {
            for &j in group {
                used[j] += model.load[i] as u64;
            }
        }
        for (j, &u) in used.iter().enumerate() {
            if u > model.capacity[j] as u64 {
                return Err(ConstraintViolation::OverCapacity { controller: j });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch() -> Assignment {
        Assignment::from_groups(vec![vec![0, 1], vec![1, 2]], 4)
    }

    #[test]
    fn basic_accessors() {
        let a = two_switch();
        assert_eq!(a.n_switches(), 2);
        assert_eq!(a.used_count(), 3);
        assert_eq!(a.total_links(), 4);
        assert!(a.contains(0, 0));
        assert!(!a.contains(0, 2));
        assert_eq!(a.links().count(), 4);
        assert!(!a.contains(9, 0), "out-of-range switch is simply absent");
    }

    #[test]
    fn moves_and_pdl() {
        let old = two_switch();
        let new = Assignment::from_groups(vec![vec![0, 3], vec![1, 2]], 4);
        // removed: (0,1); added: (0,3)
        assert_eq!(old.moves_to(&new), (1, 1));
        assert!((old.pdl_to(&new) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn pdl_paper_example() {
        // 30 links; remove a controller with 2 links, add one with 3.
        let old_groups: Vec<Vec<usize>> = (0..30).map(|i| vec![i % 10]).collect();
        let old = Assignment::from_groups(old_groups, 12);
        let mut new_groups: Vec<Vec<usize>> = (0..30).map(|i| vec![i % 10]).collect();
        // Controller 10 replaces controller 0's two appearances at
        // switches 0 and 10, and additionally joins switch 20.
        new_groups[0] = vec![10];
        new_groups[10] = vec![10];
        new_groups[20] = vec![0, 10];
        let new = Assignment::from_groups(new_groups, 12);
        let (removed, added) = old.moves_to(&new);
        assert_eq!((removed, added), (2, 3));
        assert!((old.pdl_to(&new) - 5.0 / 33.0).abs() < 1e-12);
    }

    #[test]
    fn identical_assignments_have_zero_pdl() {
        let a = two_switch();
        assert_eq!(a.pdl_to(&a.clone()), 0.0);
        assert_eq!(a.moves_to(&a.clone()), (0, 0));
    }

    #[test]
    fn check_passes_on_valid() {
        let mut m = CapModel::new(2, 4);
        m.group_size = vec![2, 2];
        assert!(two_switch().check(&m).is_ok());
    }

    #[test]
    fn check_catches_small_group() {
        let m = CapModel::new(2, 4); // default B_i = 4
        assert!(matches!(
            two_switch().check(&m),
            Err(ConstraintViolation::GroupTooSmall {
                switch: 0,
                required: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn check_catches_excluded() {
        let mut m = CapModel::new(2, 4);
        m.group_size = vec![2, 2];
        m.exclude(1);
        assert!(matches!(
            two_switch().check(&m),
            Err(ConstraintViolation::ExcludedUsed { controller: 1 })
        ));
    }

    #[test]
    fn check_catches_cs_delay() {
        let mut m = CapModel::new(2, 4);
        m.group_size = vec![2, 2];
        m.set_cs_delay(vec![vec![0.0, 9.0, 0.0, 0.0], vec![0.0; 4]])
            .set_max_cs_delay(5.0);
        assert!(matches!(
            two_switch().check(&m),
            Err(ConstraintViolation::CsDelayExceeded {
                switch: 0,
                controller: 1
            })
        ));
    }

    #[test]
    fn check_catches_cc_delay() {
        let mut m = CapModel::new(2, 4);
        m.group_size = vec![2, 2];
        let mut cc = vec![vec![0.0; 4]; 4];
        cc[0][1] = 9.0;
        cc[1][0] = 9.0;
        m.set_cc_delay(cc).set_max_cc_delay(Some(5.0));
        assert!(matches!(
            two_switch().check(&m),
            Err(ConstraintViolation::CcDelayExceeded {
                switch: 0,
                a: 0,
                b: 1
            })
        ));
    }

    #[test]
    fn check_catches_capacity() {
        let mut m = CapModel::new(2, 4);
        m.group_size = vec![2, 2];
        m.capacity = vec![1, 0, 1, 1]; // controller 1 has zero capacity
        assert!(matches!(
            two_switch().check(&m),
            Err(ConstraintViolation::OverCapacity { controller: 1 })
        ));
    }

    #[test]
    fn check_catches_missing_leader() {
        let mut m = CapModel::new(2, 4);
        m.group_size = vec![2, 2];
        m.pin_leader(0, 3);
        assert!(matches!(
            two_switch().check(&m),
            Err(ConstraintViolation::LeaderMissing {
                switch: 0,
                leader: 3
            })
        ));
    }

    #[test]
    fn violation_display_nonempty() {
        let v = ConstraintViolation::GroupTooSmall {
            switch: 1,
            required: 4,
            actual: 2,
        };
        assert!(v.to_string().contains("switch 1"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_controller_panics() {
        Assignment::from_groups(vec![vec![5]], 4);
    }
}

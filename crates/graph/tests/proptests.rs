//! Property tests for the graph substrate: Dijkstra against the
//! Bellman–Ford oracle on random graphs, path validity, and topology
//! generator invariants.

use curb_graph::{synthetic, Graph};
use proptest::prelude::*;

/// Builds a random connected graph from a proptest-generated edge list.
fn random_graph(n: usize, extra_edges: &[(usize, usize, u32)]) -> Graph {
    let mut g = Graph::with_nodes(n);
    let mut seen = std::collections::HashSet::new();
    // Spanning chain guarantees connectivity.
    for i in 1..n {
        g.add_edge(i - 1, i, 1.0 + (i % 7) as f64);
        seen.insert((i - 1, i));
    }
    for &(a, b, w) in extra_edges {
        let (a, b) = (a % n, b % n);
        let (a, b) = (a.min(b), a.max(b));
        if a != b && seen.insert((a, b)) {
            g.add_edge(a, b, 0.5 + (w % 100) as f64);
        }
    }
    g
}

proptest! {
    #[test]
    fn dijkstra_matches_bellman_ford(
        n in 2usize..24,
        edges in proptest::collection::vec((any::<usize>(), any::<usize>(), any::<u32>()), 0..40),
        src_pick in any::<prop::sample::Index>(),
    ) {
        let g = random_graph(n, &edges);
        let src = src_pick.index(n);
        let d = g.dijkstra(src).0;
        let bf = g.bellman_ford(src);
        for v in 0..n {
            prop_assert!((d[v] - bf[v]).abs() < 1e-9, "node {v}: {} vs {}", d[v], bf[v]);
        }
    }

    #[test]
    fn shortest_paths_are_valid_walks(
        n in 2usize..20,
        edges in proptest::collection::vec((any::<usize>(), any::<usize>(), any::<u32>()), 0..30),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let g = random_graph(n, &edges);
        let (src, dst) = (src_pick.index(n), dst_pick.index(n));
        let (dist, path) = g.shortest_path(src, dst).expect("connected graph");
        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().unwrap(), dst);
        // The path's edge weights must sum to the reported distance.
        let mut total = 0.0;
        for w in path.windows(2) {
            let weight = g
                .neighbors(w[0])
                .find(|&(to, _)| to == w[1])
                .map(|(_, wt)| wt)
                .expect("path edges exist");
            total += weight;
        }
        prop_assert!((total - dist).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_on_all_pairs(
        n in 2usize..16,
        edges in proptest::collection::vec((any::<usize>(), any::<usize>(), any::<u32>()), 0..24),
    ) {
        let g = random_graph(n, &edges);
        let table = g.all_pairs();
        for a in 0..n {
            prop_assert_eq!(table[a][a], 0.0);
            for b in 0..n {
                prop_assert!((table[a][b] - table[b][a]).abs() < 1e-9, "symmetry {a},{b}");
                for c in 0..n {
                    prop_assert!(
                        table[a][c] <= table[a][b] + table[b][c] + 1e-9,
                        "triangle {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn synthetic_topologies_always_well_formed(
        n_c in 1usize..16,
        n_s in 1usize..32,
        seed in any::<u64>(),
    ) {
        let t = synthetic(n_c, n_s, seed);
        prop_assert_eq!(t.controllers().count(), n_c);
        prop_assert_eq!(t.switches().count(), n_s);
        prop_assert!(t.graph.is_connected());
        for (_, _, w) in t.graph.edges() {
            prop_assert!(w.is_finite() && w >= 1.0);
        }
        // Coordinates stay in the configured box.
        for s in &t.sites {
            prop_assert!((26.0..=48.0).contains(&s.lat));
            prop_assert!((-123.0..=-68.0).contains(&s.lon));
        }
    }
}

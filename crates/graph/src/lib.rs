//! Graph substrate for the Curb control plane.
//!
//! The Curb paper uses NetworkX to compute shortest paths (which become
//! the flow rules controllers install) and the public Internet2 topology
//! as the simulated network. This crate rebuilds both:
//!
//! * [`graph`] — a weighted undirected graph with Dijkstra /
//!   Bellman–Ford shortest paths and an all-pairs table.
//! * [`delay`] — the paper's delay model: propagation at
//!   2×10⁸ m/s in cable plus serialization at 100 Mbps.
//! * [`internet2()`] — the Internet2-style topology with 16 controller
//!   sites and 34 switch sites placed at real US city coordinates
//!   (link lengths by great-circle distance).
//!
//! # Examples
//!
//! ```rust
//! use curb_graph::internet2;
//!
//! let topo = internet2();
//! assert_eq!(topo.controllers().count(), 16);
//! assert_eq!(topo.switches().count(), 34);
//! let seattle = topo.site_by_name("Seattle").unwrap();
//! let miami = topo.site_by_name("Miami").unwrap();
//! let (km, path) = topo.graph.shortest_path(seattle, miami).unwrap();
//! assert!(km > 4000.0 && path.len() > 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod graph;
mod internet2;
mod synthetic;

pub use delay::DelayModel;
pub use graph::{Graph, NodeIdx};
pub use internet2::{haversine_km, internet2, Internet2, Role, Site};
pub use synthetic::synthetic;

//! The Internet2-style evaluation topology.
//!
//! Fig. 3 of the Curb paper simulates an Internet2 network with 16
//! controller sites and 34 switch sites. The exact node list is not
//! published, so this module reconstructs a faithful equivalent: 50 real
//! US cities on the Internet2 footprint, connected by a backbone-style
//! mesh, with the 16 major exchange hubs hosting controllers. Link
//! lengths are great-circle (haversine) distances, matching the paper's
//! "determined by geographic distances" rule.

use crate::graph::{Graph, NodeIdx};

/// Whether a site hosts a controller or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// A control-plane site (blue points in the paper's Fig. 3).
    Controller,
    /// A data-plane site (yellow points in the paper's Fig. 3).
    Switch,
}

/// One site in the topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Site name (unique within the topology).
    pub name: String,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Controller or switch.
    pub role: Role,
}

/// The full evaluation topology: sites plus the distance-weighted graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Internet2 {
    /// All sites; `graph` node indices correspond to positions here.
    pub sites: Vec<Site>,
    /// Distance-weighted (km) connectivity between sites.
    pub graph: Graph,
}

impl Internet2 {
    /// Indices of all controller sites.
    pub fn controllers(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role == Role::Controller)
            .map(|(i, _)| i)
    }

    /// Indices of all switch sites.
    pub fn switches(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role == Role::Switch)
            .map(|(i, _)| i)
    }

    /// Looks up a site index by city name.
    pub fn site_by_name(&self, name: &str) -> Option<NodeIdx> {
        self.sites.iter().position(|s| s.name == name)
    }

    /// Great-circle distance in km between two sites.
    ///
    /// This is the *direct* distance; use `graph.shortest_path` for the
    /// in-network cable distance.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn direct_km(&self, a: NodeIdx, b: NodeIdx) -> f64 {
        let (sa, sb) = (&self.sites[a], &self.sites[b]);
        haversine_km(sa.lat, sa.lon, sb.lat, sb.lon)
    }

    /// A reduced copy keeping all controllers but only the first
    /// `n_switches` switch sites (used by the paper's sweeps over
    /// 4..34 switches). Links whose endpoints survive are kept; the
    /// result is re-checked for connectivity by the caller's constraints.
    ///
    /// # Panics
    ///
    /// Panics if `n_switches` exceeds the number of switch sites.
    pub fn with_switch_count(&self, n_switches: usize) -> Internet2 {
        let switches: Vec<NodeIdx> = self.switches().collect();
        assert!(n_switches <= switches.len(), "not enough switch sites");
        let keep: Vec<NodeIdx> = self
            .controllers()
            .chain(switches.into_iter().take(n_switches))
            .collect();
        let mut index_map = vec![None; self.sites.len()];
        let mut sites = Vec::with_capacity(keep.len());
        for (new_idx, &old_idx) in keep.iter().enumerate() {
            index_map[old_idx] = Some(new_idx);
            sites.push(self.sites[old_idx].clone());
        }
        let mut graph = Graph::with_nodes(sites.len());
        for (a, b, w) in self.graph.edges() {
            if let (Some(na), Some(nb)) = (index_map[a], index_map[b]) {
                graph.add_edge(na, nb, w);
            }
        }
        // Dropping sites can disconnect the mesh (removed cities carried
        // transit links). Reconnect components with direct great-circle
        // links, modelling leased lines between the surviving sites.
        loop {
            let (dist, _) = graph.dijkstra(0);
            let Some(orphan) = dist.iter().position(|d| d.is_infinite()) else {
                break;
            };
            let (nearest, km) = (0..sites.len())
                .filter(|&other| dist[other].is_finite())
                .map(|other| {
                    (
                        other,
                        haversine_km(
                            sites[orphan].lat,
                            sites[orphan].lon,
                            sites[other].lat,
                            sites[other].lon,
                        ),
                    )
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("main component is non-empty");
            graph.add_edge(orphan, nearest, km.max(1.0));
        }
        Internet2 { sites, graph }
    }
}

/// Great-circle distance between two lat/lon points, in kilometres.
///
/// # Examples
///
/// ```rust
/// use curb_graph::haversine_km;
///
/// // New York to Los Angeles is roughly 3940 km.
/// let d = haversine_km(40.71, -74.01, 34.05, -118.24);
/// assert!((3900.0..4000.0).contains(&d));
/// ```
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const EARTH_RADIUS_KM: f64 = 6371.0;
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dp = (lat2 - lat1).to_radians();
    let dl = (lon2 - lon1).to_radians();
    let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
}

use Role::{Controller, Switch};

/// `(name, lat, lon, role)` for the 50 sites: 16 controllers, 34 switches.
const SITES: [(&str, f64, f64, Role); 50] = [
    ("Seattle", 47.61, -122.33, Controller),
    ("Portland", 45.52, -122.68, Switch),
    ("Sacramento", 38.58, -121.49, Switch),
    ("Sunnyvale", 37.37, -122.04, Controller),
    ("Los Angeles", 34.05, -118.24, Controller),
    ("San Diego", 32.72, -117.16, Switch),
    ("Las Vegas", 36.17, -115.14, Switch),
    ("Phoenix", 33.45, -112.07, Switch),
    ("Tucson", 32.22, -110.97, Switch),
    ("Albuquerque", 35.08, -106.65, Switch),
    ("El Paso", 31.76, -106.49, Controller),
    ("Salt Lake City", 40.76, -111.89, Controller),
    ("Boise", 43.62, -116.20, Switch),
    ("Denver", 39.74, -104.99, Controller),
    ("Cheyenne", 41.14, -104.82, Switch),
    ("Kansas City", 39.10, -94.58, Controller),
    ("Tulsa", 36.15, -95.99, Switch),
    ("Dallas", 32.78, -96.80, Controller),
    ("Houston", 29.76, -95.37, Controller),
    ("San Antonio", 29.42, -98.49, Switch),
    ("Baton Rouge", 30.45, -91.19, Switch),
    ("Jackson", 32.30, -90.18, Switch),
    ("Memphis", 35.15, -90.05, Switch),
    ("Nashville", 36.16, -86.78, Switch),
    ("Atlanta", 33.75, -84.39, Controller),
    ("Jacksonville", 30.33, -81.66, Switch),
    ("Miami", 25.76, -80.19, Switch),
    ("Tampa", 27.95, -82.46, Switch),
    ("Charlotte", 35.23, -80.84, Switch),
    ("Raleigh", 35.78, -78.64, Switch),
    ("Washington DC", 38.91, -77.04, Controller),
    ("Philadelphia", 39.95, -75.17, Switch),
    ("New York", 40.71, -74.01, Controller),
    ("Hartford", 41.77, -72.67, Switch),
    ("Boston", 42.36, -71.06, Controller),
    ("Albany", 42.65, -73.75, Switch),
    ("Buffalo", 42.89, -78.88, Switch),
    ("Cleveland", 41.50, -81.69, Controller),
    ("Pittsburgh", 40.44, -79.99, Switch),
    ("Columbus", 39.96, -83.00, Switch),
    ("Cincinnati", 39.10, -84.51, Switch),
    ("Louisville", 38.25, -85.76, Switch),
    ("Indianapolis", 39.77, -86.16, Switch),
    ("Chicago", 41.88, -87.63, Controller),
    ("Milwaukee", 43.04, -87.91, Switch),
    ("Minneapolis", 44.98, -93.27, Controller),
    ("Madison", 43.07, -89.40, Switch),
    ("St Louis", 38.63, -90.20, Switch),
    ("Missoula", 46.87, -113.99, Switch),
    ("Billings", 45.78, -108.50, Switch),
];

/// Backbone links as `(site name, site name)` pairs.
const LINKS: [(&str, &str); 58] = [
    ("Seattle", "Portland"),
    ("Seattle", "Boise"),
    ("Seattle", "Missoula"),
    ("Portland", "Sacramento"),
    ("Sacramento", "Sunnyvale"),
    ("Sacramento", "Salt Lake City"),
    ("Sunnyvale", "Los Angeles"),
    ("Los Angeles", "San Diego"),
    ("Los Angeles", "Las Vegas"),
    ("Las Vegas", "Salt Lake City"),
    ("Las Vegas", "Phoenix"),
    ("San Diego", "Phoenix"),
    ("Phoenix", "Tucson"),
    ("Phoenix", "Albuquerque"),
    ("Tucson", "El Paso"),
    ("Albuquerque", "El Paso"),
    ("Albuquerque", "Denver"),
    ("El Paso", "San Antonio"),
    ("San Antonio", "Houston"),
    ("San Antonio", "Dallas"),
    ("Houston", "Dallas"),
    ("Houston", "Baton Rouge"),
    ("Baton Rouge", "Jackson"),
    ("Jackson", "Memphis"),
    ("Memphis", "Nashville"),
    ("Memphis", "St Louis"),
    ("Nashville", "Atlanta"),
    ("Nashville", "Louisville"),
    ("Atlanta", "Jacksonville"),
    ("Atlanta", "Charlotte"),
    ("Jacksonville", "Tampa"),
    ("Tampa", "Miami"),
    ("Charlotte", "Raleigh"),
    ("Raleigh", "Washington DC"),
    ("Washington DC", "Philadelphia"),
    ("Washington DC", "Pittsburgh"),
    ("Philadelphia", "New York"),
    ("New York", "Hartford"),
    ("New York", "Albany"),
    ("Hartford", "Boston"),
    ("Boston", "Albany"),
    ("Albany", "Buffalo"),
    ("Buffalo", "Cleveland"),
    ("Cleveland", "Pittsburgh"),
    ("Cleveland", "Columbus"),
    ("Cleveland", "Chicago"),
    ("Pittsburgh", "Columbus"),
    ("Columbus", "Cincinnati"),
    ("Cincinnati", "Louisville"),
    ("Louisville", "Indianapolis"),
    ("Indianapolis", "Chicago"),
    ("Indianapolis", "St Louis"),
    ("St Louis", "Kansas City"),
    ("Kansas City", "Denver"),
    ("Kansas City", "Tulsa"),
    ("Kansas City", "Chicago"),
    ("Tulsa", "Dallas"),
    ("Denver", "Cheyenne"),
];

/// Extra links completing the northern loop and the Rockies.
const LINKS_EXTRA: [(&str, &str); 7] = [
    ("Cheyenne", "Salt Lake City"),
    ("Salt Lake City", "Boise"),
    ("Salt Lake City", "Denver"),
    ("Boise", "Missoula"),
    ("Missoula", "Billings"),
    ("Billings", "Minneapolis"),
    ("Minneapolis", "Madison"),
];

/// Final links around the Great Lakes.
const LINKS_LAKES: [(&str, &str); 3] = [
    ("Madison", "Milwaukee"),
    ("Milwaukee", "Chicago"),
    ("Minneapolis", "Chicago"),
];

/// Builds the Internet2-style evaluation topology used throughout the
/// paper's experiments: 16 controllers, 34 switches, 68 distance-weighted
/// links.
pub fn internet2() -> Internet2 {
    let sites: Vec<Site> = SITES
        .iter()
        .map(|&(name, lat, lon, role)| Site {
            name: name.to_string(),
            lat,
            lon,
            role,
        })
        .collect();
    let mut graph = Graph::with_nodes(sites.len());
    let index = |name: &str| {
        sites
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown site {name}"))
    };
    for (a, b) in LINKS.iter().chain(&LINKS_EXTRA).chain(&LINKS_LAKES) {
        let (ia, ib) = (index(a), index(b));
        let km = haversine_km(sites[ia].lat, sites[ia].lon, sites[ib].lat, sites[ib].lon);
        graph.add_edge(ia, ib, km);
    }
    Internet2 { sites, graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let t = internet2();
        assert_eq!(t.sites.len(), 50);
        assert_eq!(t.controllers().count(), 16);
        assert_eq!(t.switches().count(), 34);
        assert_eq!(t.graph.edge_count(), 68);
    }

    #[test]
    fn topology_is_connected() {
        assert!(internet2().graph.is_connected());
    }

    #[test]
    fn names_are_unique() {
        let t = internet2();
        for (i, s) in t.sites.iter().enumerate() {
            assert_eq!(
                t.site_by_name(&s.name),
                Some(i),
                "duplicate site {}",
                s.name
            );
        }
        assert!(t.site_by_name("Gotham").is_none());
    }

    #[test]
    fn link_lengths_are_plausible() {
        let t = internet2();
        for (a, b, km) in t.graph.edges() {
            assert!(
                (50.0..2000.0).contains(&km),
                "implausible link {} - {}: {km} km",
                t.sites[a].name,
                t.sites[b].name
            );
        }
    }

    #[test]
    fn haversine_known_distances() {
        // Seattle–Portland ≈ 233 km
        let d = haversine_km(47.61, -122.33, 45.52, -122.68);
        assert!((220.0..250.0).contains(&d), "got {d}");
        // Same point = 0
        assert_eq!(haversine_km(40.0, -100.0, 40.0, -100.0), 0.0);
    }

    #[test]
    fn coast_to_coast_routes_through_backbone() {
        let t = internet2();
        let (km, path) = t
            .graph
            .shortest_path(
                t.site_by_name("Sunnyvale").unwrap(),
                t.site_by_name("New York").unwrap(),
            )
            .unwrap();
        assert!(km > 3500.0, "cable route must exceed direct distance");
        assert!(path.len() >= 4);
    }

    #[test]
    fn with_switch_count_keeps_controllers() {
        let t = internet2();
        let small = t.with_switch_count(4);
        assert_eq!(small.controllers().count(), 16);
        assert_eq!(small.switches().count(), 4);
        assert_eq!(small.sites.len(), 20);
    }

    #[test]
    fn with_switch_count_full_is_identity_sized() {
        let t = internet2();
        let full = t.with_switch_count(34);
        assert_eq!(full.sites.len(), t.sites.len());
        assert_eq!(full.graph.edge_count(), t.graph.edge_count());
    }

    #[test]
    #[should_panic(expected = "not enough switch sites")]
    fn with_switch_count_too_large_panics() {
        internet2().with_switch_count(35);
    }

    #[test]
    fn direct_km_matches_haversine() {
        let t = internet2();
        let a = t.site_by_name("Seattle").unwrap();
        let b = t.site_by_name("Boston").unwrap();
        let d = t.direct_km(a, b);
        assert!((3800.0..4200.0).contains(&d), "got {d}");
    }
}

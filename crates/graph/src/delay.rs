//! The paper's link-delay model.
//!
//! Section IV of the Curb paper fixes the velocity of light in cables at
//! `2 × 10⁸ m/s` and the link bandwidth at `100 Mbps`; together with the
//! great-circle path lengths this determines the delay of any path in
//! the Internet2 topology.

use core::time::Duration;

/// Computes link and path delays from distance and message size.
///
/// # Examples
///
/// ```rust
/// use curb_graph::DelayModel;
///
/// let model = DelayModel::paper_default();
/// // 200 km of cable at 2e8 m/s is exactly 1 ms of propagation.
/// assert_eq!(model.propagation(200.0), std::time::Duration::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Signal velocity in km/s (paper: 2×10⁵ km/s = 2×10⁸ m/s).
    pub speed_km_per_s: f64,
    /// Link bandwidth in bits per second (paper: 100 Mbps).
    pub bandwidth_bps: f64,
}

impl DelayModel {
    /// The configuration used throughout the paper's evaluation.
    pub fn paper_default() -> Self {
        DelayModel {
            speed_km_per_s: 200_000.0,
            bandwidth_bps: 100_000_000.0,
        }
    }

    /// Propagation delay over `km` kilometres of cable.
    ///
    /// # Panics
    ///
    /// Panics if `km` is negative or non-finite.
    pub fn propagation(&self, km: f64) -> Duration {
        assert!(km.is_finite() && km >= 0.0, "distance must be non-negative");
        Duration::from_secs_f64(km / self.speed_km_per_s)
    }

    /// Serialization (transmission) delay for a message of `bytes`.
    pub fn transmission(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Total one-way delay for a message of `bytes` over `km` of cable:
    /// propagation plus serialization.
    pub fn link_delay(&self, km: f64, bytes: usize) -> Duration {
        self.propagation(km) + self.transmission(bytes)
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_matches_physics() {
        let m = DelayModel::paper_default();
        // 2000 km / 200_000 km/s = 10 ms
        assert_eq!(m.propagation(2000.0), Duration::from_millis(10));
        assert_eq!(m.propagation(0.0), Duration::ZERO);
    }

    #[test]
    fn transmission_matches_bandwidth() {
        let m = DelayModel::paper_default();
        // 12_500_000 bytes = 100 Mbit => 1 s at 100 Mbps
        assert_eq!(m.transmission(12_500_000), Duration::from_secs(1));
        // 1250 bytes = 10_000 bits => 100 µs
        assert_eq!(m.transmission(1250), Duration::from_micros(100));
    }

    #[test]
    fn link_delay_is_sum() {
        let m = DelayModel::paper_default();
        assert_eq!(
            m.link_delay(2000.0, 1250),
            Duration::from_millis(10) + Duration::from_micros(100)
        );
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(DelayModel::default(), DelayModel::paper_default());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_panics() {
        DelayModel::paper_default().propagation(-1.0);
    }
}

//! Weighted undirected graphs and shortest-path algorithms.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a node within a [`Graph`].
pub type NodeIdx = usize;

/// A weighted undirected graph stored as adjacency lists.
///
/// Edge weights are non-negative `f64` values (kilometres in the Curb
/// topology).
///
/// # Examples
///
/// ```rust
/// use curb_graph::Graph;
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// let (dist, path) = g.shortest_path(0, 2).unwrap();
/// assert_eq!(dist, 3.0);
/// assert_eq!(path, vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    adjacency: Vec<Vec<(NodeIdx, f64)>>,
    edge_count: usize,
}

/// Max-heap entry ordered by *smallest* distance first.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeIdx,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap pops the smallest distance; ties broken
        // by node index for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated node and returns its index.
    pub fn add_node(&mut self) -> NodeIdx {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Adds an undirected edge of weight `w` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `a == b`, or if the
    /// weight is negative or non-finite.
    pub fn add_edge(&mut self, a: NodeIdx, b: NodeIdx, w: f64) {
        assert!(
            a < self.node_count() && b < self.node_count(),
            "node out of range"
        );
        assert!(a != b, "self-loops are not allowed");
        assert!(
            w.is_finite() && w >= 0.0,
            "weight must be finite and non-negative"
        );
        self.adjacency[a].push((b, w));
        self.adjacency[b].push((a, w));
        self.edge_count += 1;
    }

    /// Iterates over `(neighbor, weight)` pairs of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeIdx) -> impl Iterator<Item = (NodeIdx, f64)> + '_ {
        self.adjacency[node].iter().copied()
    }

    /// Iterates over all undirected edges as `(a, b, w)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeIdx, NodeIdx, f64)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(a, adj)| {
            adj.iter()
                .filter(move |(b, _)| a < *b)
                .map(move |&(b, w)| (a, b, w))
        })
    }

    /// Single-source shortest paths (Dijkstra).
    ///
    /// Returns `(dist, prev)` where `dist[v]` is the distance from `src`
    /// (`f64::INFINITY` if unreachable) and `prev[v]` is the predecessor
    /// on a shortest path.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn dijkstra(&self, src: NodeIdx) -> (Vec<f64>, Vec<Option<NodeIdx>>) {
        assert!(src < self.node_count(), "source out of range");
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: src,
        });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for (v, w) in self.neighbors(u) {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = Some(u);
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
        (dist, prev)
    }

    /// Shortest path from `src` to `dst` as `(distance, node sequence)`,
    /// or `None` if `dst` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn shortest_path(&self, src: NodeIdx, dst: NodeIdx) -> Option<(f64, Vec<NodeIdx>)> {
        assert!(dst < self.node_count(), "destination out of range");
        let (dist, prev) = self.dijkstra(src);
        if dist[dst].is_infinite() {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = prev[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], src);
        Some((dist[dst], path))
    }

    /// All-pairs shortest distances: `table[u][v]` is the distance from
    /// `u` to `v` (`f64::INFINITY` if unreachable).
    pub fn all_pairs(&self) -> Vec<Vec<f64>> {
        (0..self.node_count()).map(|u| self.dijkstra(u).0).collect()
    }

    /// Single-source shortest paths by Bellman–Ford. Slower than
    /// [`Graph::dijkstra`]; retained as an independent oracle for tests.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bellman_ford(&self, src: NodeIdx) -> Vec<f64> {
        assert!(src < self.node_count(), "source out of range");
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n];
        dist[src] = 0.0;
        for _ in 0..n.saturating_sub(1) {
            let mut changed = false;
            for (a, b, w) in self.edges().collect::<Vec<_>>() {
                if dist[a] + w < dist[b] {
                    dist[b] = dist[a] + w;
                    changed = true;
                }
                if dist[b] + w < dist[a] {
                    dist[a] = dist[b] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    /// Returns `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let (dist, _) = self.dijkstra(0);
        dist.iter().all(|d| d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -0.5- 3
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 3.0);
        g.add_edge(2, 3, 0.5);
        g
    }

    #[test]
    fn dijkstra_picks_cheapest_route() {
        let g = diamond();
        let (d, path) = g.shortest_path(0, 3).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path, vec![0, 1, 3]);
    }

    #[test]
    fn dijkstra_distances_complete() {
        let g = diamond();
        let (dist, _) = g.dijkstra(0);
        assert_eq!(dist, vec![0.0, 1.0, 2.5, 2.0]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0);
        assert!(g.shortest_path(0, 2).is_none());
        assert!(!g.is_connected());
    }

    #[test]
    fn path_to_self_is_trivial() {
        let g = diamond();
        let (d, path) = g.shortest_path(2, 2).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(path, vec![2]);
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = diamond();
        let table = g.all_pairs();
        for (u, row) in table.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                assert_eq!(d, table[v][u]);
            }
        }
    }

    #[test]
    fn bellman_ford_agrees_with_dijkstra() {
        let g = diamond();
        for src in 0..4 {
            assert_eq!(g.dijkstra(src).0, g.bellman_ford(src));
        }
    }

    #[test]
    fn zero_weight_edges_allowed() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1, 0.0);
        assert_eq!(g.shortest_path(0, 1).unwrap().0, 0.0);
    }

    #[test]
    fn edges_iterator_lists_each_once() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = Graph::with_nodes(1);
        let n = g.add_node();
        assert_eq!(n, 1);
        g.add_edge(0, 1, 2.0);
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Graph::with_nodes(2).add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        Graph::with_nodes(2).add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        Graph::with_nodes(2).add_edge(0, 1, -1.0);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::with_nodes(0).is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths; Dijkstra must pick the same one each run.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(2, 3, 1.0);
        let first = g.shortest_path(0, 3).unwrap();
        for _ in 0..10 {
            assert_eq!(g.shortest_path(0, 3).unwrap(), first);
        }
    }
}

//! Synthetic edge-network topologies for scalability sweeps.
//!
//! The paper's evaluation is fixed at the Internet2 scale (16
//! controllers, 34 switches); validating the `O(N)` message-complexity
//! claim of Theorem 1 needs networks whose controller count grows. This
//! module generates Internet2-*like* topologies of arbitrary size:
//! sites scattered over a continental-US-sized region, connected to
//! their nearest neighbours plus a connectivity backbone.

use crate::graph::Graph;
use crate::internet2::{haversine_km, Internet2, Role, Site};

/// SplitMix64, locally seeded (this crate has no RNG dependency).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
    let unit = (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64;
    lo + unit * (hi - lo)
}

/// Generates a random connected topology with `n_controllers`
/// controller sites and `n_switches` switch sites, reproducible per
/// `seed`.
///
/// Sites are placed uniformly over the continental-US bounding box
/// (latitudes 26–48, longitudes −123–−68) and joined to their three
/// nearest neighbours; a chain over the site order guarantees
/// connectivity. Controller sites are spread evenly through the site
/// list so they interleave geographically with switches, like the
/// paper's Fig. 3.
///
/// # Panics
///
/// Panics if either count is zero.
///
/// # Examples
///
/// ```rust
/// use curb_graph::synthetic;
///
/// let topo = synthetic(32, 68, 7);
/// assert_eq!(topo.controllers().count(), 32);
/// assert_eq!(topo.switches().count(), 68);
/// assert!(topo.graph.is_connected());
/// ```
pub fn synthetic(n_controllers: usize, n_switches: usize, seed: u64) -> Internet2 {
    assert!(
        n_controllers > 0 && n_switches > 0,
        "counts must be positive"
    );
    let total = n_controllers + n_switches;
    let mut state = seed ^ 0xCB_5EED;
    // Controller positions in the site list: evenly spaced.
    let is_controller = |i: usize| -> bool {
        // i * n_controllers / total increments exactly n_controllers
        // times over i = 0..total.
        (i * n_controllers) / total != ((i + 1) * n_controllers) / total
    };
    let mut c_idx = 0;
    let mut s_idx = 0;
    let mut sites = Vec::with_capacity(total);
    for i in 0..total {
        let lat = uniform(&mut state, 26.0, 48.0);
        let lon = uniform(&mut state, -123.0, -68.0);
        let (name, role) = if is_controller(i) {
            c_idx += 1;
            (format!("ctrl-{}", c_idx - 1), Role::Controller)
        } else {
            s_idx += 1;
            (format!("sw-{}", s_idx - 1), Role::Switch)
        };
        sites.push(Site {
            name,
            lat,
            lon,
            role,
        });
    }
    debug_assert_eq!(c_idx, n_controllers);
    debug_assert_eq!(s_idx, n_switches);

    let mut graph = Graph::with_nodes(total);
    let mut have_edge = std::collections::HashSet::new();
    let mut add = |graph: &mut Graph, a: usize, b: usize| {
        let key = (a.min(b), a.max(b));
        if a != b && have_edge.insert(key) {
            let km = haversine_km(sites[a].lat, sites[a].lon, sites[b].lat, sites[b].lon);
            graph.add_edge(a, b, km.max(1.0));
        }
    };
    // Three nearest neighbours per site.
    for a in 0..total {
        let mut by_distance: Vec<(f64, usize)> = (0..total)
            .filter(|&b| b != a)
            .map(|b| {
                (
                    haversine_km(sites[a].lat, sites[a].lon, sites[b].lat, sites[b].lon),
                    b,
                )
            })
            .collect();
        by_distance.sort_by(|x, y| x.partial_cmp(y).expect("finite distances"));
        for &(_, b) in by_distance.iter().take(3) {
            add(&mut graph, a, b);
        }
    }
    // Connectivity backbone: chain sites in longitude order.
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by(|&a, &b| {
        sites[a]
            .lon
            .partial_cmp(&sites[b].lon)
            .expect("finite longitudes")
    });
    for w in order.windows(2) {
        add(&mut graph, w[0], w[1]);
    }
    Internet2 { sites, graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requested_counts_and_connectivity() {
        for (c, s) in [(4, 8), (16, 34), (40, 80)] {
            let t = synthetic(c, s, 1);
            assert_eq!(t.controllers().count(), c, "{c}x{s}");
            assert_eq!(t.switches().count(), s, "{c}x{s}");
            assert!(t.graph.is_connected(), "{c}x{s}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(synthetic(8, 16, 42), synthetic(8, 16, 42));
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(synthetic(8, 16, 1), synthetic(8, 16, 2));
    }

    #[test]
    fn names_unique() {
        let t = synthetic(10, 20, 3);
        for (i, s) in t.sites.iter().enumerate() {
            assert_eq!(t.site_by_name(&s.name), Some(i));
        }
    }

    #[test]
    fn controllers_interleave() {
        // Controllers must not all cluster at the front of the site
        // list (they should be spread for geographic coverage).
        let t = synthetic(5, 45, 4);
        let first_controller = t.controllers().next().unwrap();
        let last_controller = t.controllers().last().unwrap();
        assert!(last_controller - first_controller > 20);
    }

    #[test]
    fn edge_weights_positive_finite() {
        let t = synthetic(6, 12, 5);
        for (_, _, w) in t.graph.edges() {
            assert!(w.is_finite() && w >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_controllers_panics() {
        synthetic(0, 5, 1);
    }
}

//! Property-based tests for the crypto substrate: U256 algebra against a
//! u128 oracle, division invariants, hashing consistency, and signature
//! soundness.

use curb_crypto::rng::DetRng;
use curb_crypto::sha256::{digest, Sha256};
use curb_crypto::u256::U256;
use curb_crypto::KeyPair;
use proptest::prelude::*;

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = U256::from_u64(a).wrapping_add(&U256::from_u64(b));
        prop_assert_eq!(sum, U256::from_u128(a as u128 + b as u128));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let diff = U256::from_u128(hi).checked_sub(&U256::from_u128(lo)).unwrap();
        prop_assert_eq!(diff, U256::from_u128(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = U256::from_u64(a).checked_mul(&U256::from_u64(b)).unwrap();
        prop_assert_eq!(prod, U256::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn add_is_commutative(a in any::<[u64; 4]>(), b in any::<[u64; 4]>()) {
        let x = U256::from_limbs(a);
        let y = U256::from_limbs(b);
        prop_assert_eq!(x.wrapping_add(&y), y.wrapping_add(&x));
    }

    #[test]
    fn add_is_associative(a in any::<[u64; 4]>(), b in any::<[u64; 4]>(), c in any::<[u64; 4]>()) {
        let (x, y, z) = (U256::from_limbs(a), U256::from_limbs(b), U256::from_limbs(c));
        prop_assert_eq!(
            x.wrapping_add(&y).wrapping_add(&z),
            x.wrapping_add(&y.wrapping_add(&z))
        );
    }

    #[test]
    fn sub_undoes_add(a in any::<[u64; 4]>(), b in any::<[u64; 4]>()) {
        let x = U256::from_limbs(a);
        let y = U256::from_limbs(b);
        prop_assert_eq!(x.wrapping_add(&y).wrapping_sub(&y), x);
    }

    #[test]
    fn div_rem_invariant(n in any::<[u64; 4]>(), d in any::<[u64; 4]>()) {
        let n = U256::from_limbs(n);
        let d = U256::from_limbs(d);
        prop_assume!(!d.is_zero());
        let (q, r) = n.div_rem(&d);
        prop_assert!(r < d);
        let back = q.checked_mul(&d).and_then(|qd| qd.checked_add(&r));
        prop_assert_eq!(back, Some(n));
    }

    #[test]
    fn rem512_matches_divrem(a in any::<[u64; 4]>(), m in 1u64..) {
        // For products that fit 256 bits when reduced, compare the binary
        // 512-bit reduction against 256-bit div_rem on a small operand.
        let a = U256::from_limbs(a);
        let m = U256::from_u64(m);
        let wide = a.widening_mul(&U256::ONE);
        prop_assert_eq!(wide.rem_u256(&m), a.rem(&m));
    }

    #[test]
    fn mul_mod_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 1u128..) {
        let got = U256::from_u64(a).mul_mod(&U256::from_u64(b), &U256::from_u128(m));
        prop_assert_eq!(got, U256::from_u128((a as u128 * b as u128) % m));
    }

    #[test]
    fn pow_mod_matches_naive(base in any::<u64>(), exp in 0u32..64, m in 2u64..) {
        let m256 = U256::from_u64(m);
        let got = U256::from_u64(base).pow_mod(&U256::from_u64(exp as u64), &m256);
        // Naive square-free oracle in u128.
        let mut acc: u128 = 1;
        for _ in 0..exp {
            acc = acc * (base as u128 % m as u128) % m as u128;
        }
        prop_assert_eq!(got, U256::from_u128(acc));
    }

    #[test]
    fn pow_mod_laws(a in any::<u64>(), x in any::<u32>(), y in any::<u32>(), m in 2u64..) {
        // a^(x+y) == a^x * a^y (mod m)
        let m256 = U256::from_u64(m);
        let a256 = U256::from_u64(a);
        let lhs = a256.pow_mod(&U256::from_u64(x as u64 + y as u64), &m256);
        let rhs = a256
            .pow_mod(&U256::from_u64(x as u64), &m256)
            .mul_mod(&a256.pow_mod(&U256::from_u64(y as u64), &m256), &m256);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn be_bytes_roundtrip(limbs in any::<[u64; 4]>()) {
        let v = U256::from_limbs(limbs);
        prop_assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn shl_shr_roundtrip(limbs in any::<[u64; 2]>(), n in 0u32..128) {
        let v = U256::from_limbs([limbs[0], limbs[1], 0, 0]);
        prop_assert_eq!(v.wrapping_shl(n).wrapping_shr(n), v);
    }

    #[test]
    fn sha_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let cut = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), digest(&data));
    }

    #[test]
    fn sha_distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn signatures_verify_and_bind_message(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64), other in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut rng = DetRng::new(seed);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(&msg, &mut rng);
        prop_assert!(kp.public().verify(&msg, &sig));
        if other != msg {
            prop_assert!(!kp.public().verify(&other, &sig));
        }
    }
}

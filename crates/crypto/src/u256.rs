//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] is the scalar type underlying the [`crate::schnorr`]
//! signature scheme: modular exponentiation over a 256-bit prime field
//! needs full-width multiplication (via the internal 512-bit
//! intermediate [`U512`]) and division with remainder.
//!
//! The representation is four little-endian `u64` limbs. All operations
//! are implemented from scratch — no external big-integer crate.

#![allow(clippy::needless_range_loop)]
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, BitAnd, BitOr, BitXor, Shl, Shr, Sub};

/// A 256-bit unsigned integer (four little-endian 64-bit limbs).
///
/// # Examples
///
/// ```rust
/// use curb_crypto::U256;
///
/// let a = U256::from_u64(10);
/// let b = U256::from_u64(32);
/// assert_eq!(a + b, U256::from_u64(42));
/// assert_eq!((b - a).to_u64(), Some(22));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub(crate) [u64; 4]);

/// A 512-bit unsigned integer, used as the widening-multiplication
/// intermediate for modular reduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U512(pub(crate) [u64; 8]);

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a value from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Creates a value from explicit little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Converts to `u64` if the value fits, `None` otherwise.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `u128` if the value fits, `None` otherwise.
    pub fn to_u128(&self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0] as u128 | ((self.0[1] as u128) << 64))
        } else {
            None
        }
    }

    /// Parses a big-endian hexadecimal string (no `0x` prefix, up to 64
    /// hex digits).
    ///
    /// # Errors
    ///
    /// Returns `None` for empty input, input longer than 64 digits, or
    /// non-hexadecimal characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut v = U256::ZERO;
        for ch in s.chars() {
            let d = ch.to_digit(16)? as u64;
            v = v.checked_shl(4)?;
            v.0[0] |= d;
        }
        Some(v)
    }

    /// Reads a value from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[(3 - i) * 8..(4 - i) * 8]);
            *limb = u64::from_be_bytes(b);
        }
        U256(limbs)
    }

    /// Writes the value as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of bits required to represent the value (`0` for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Addition returning the wrapped value and a carry flag.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Subtraction returning the wrapped value and a borrow flag.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Addition modulo `2^256`.
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Subtraction modulo `2^256`.
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Addition returning `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Subtraction returning `None` on underflow.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Left shift returning `None` if bits are shifted out.
    pub fn checked_shl(&self, n: u32) -> Option<U256> {
        if n as usize >= 256 {
            return if self.is_zero() { Some(*self) } else { None };
        }
        if self.bits() + n as usize > 256 {
            return None;
        }
        Some(self.wrapping_shl(n))
    }

    /// Left shift modulo `2^256`.
    pub fn wrapping_shl(&self, n: u32) -> U256 {
        let n = n as usize;
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let lo = self.0[i - limb_shift] << bit_shift;
            let hi = if bit_shift > 0 && i > limb_shift {
                self.0[i - limb_shift - 1] >> (64 - bit_shift)
            } else {
                0
            };
            out[i] = lo | hi;
        }
        U256(out)
    }

    /// Logical right shift.
    pub fn wrapping_shr(&self, n: u32) -> U256 {
        let n = n as usize;
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in 0..(4 - limb_shift) {
            let lo = self.0[i + limb_shift] >> bit_shift;
            let hi = if bit_shift > 0 && i + limb_shift + 1 < 4 {
                self.0[i + limb_shift + 1] << (64 - bit_shift)
            } else {
                0
            };
            out[i] = lo | hi;
        }
        U256(out)
    }

    /// Full 256×256 → 512-bit schoolbook multiplication.
    pub fn widening_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// Multiplication returning `None` if the product exceeds 256 bits.
    pub fn checked_mul(&self, rhs: &U256) -> Option<U256> {
        let wide = self.widening_mul(rhs);
        if wide.0[4..].iter().any(|&l| l != 0) {
            None
        } else {
            let mut limbs = [0u64; 4];
            limbs.copy_from_slice(&wide.0[..4]);
            Some(U256(limbs))
        }
    }

    /// Division with remainder (binary long division).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (U256::ZERO, *self);
        }
        let shift = self.bits() - divisor.bits();
        let mut quotient = U256::ZERO;
        let mut remainder = *self;
        let mut shifted = divisor.wrapping_shl(shift as u32);
        for i in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.wrapping_sub(&shifted);
                quotient.0[i / 64] |= 1 << (i % 64);
            }
            shifted = shifted.wrapping_shr(1);
        }
        (quotient, remainder)
    }

    /// `self mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem(&self, modulus: &U256) -> U256 {
        self.div_rem(modulus).1
    }

    /// Modular addition: `(self + rhs) mod modulus`.
    ///
    /// Both operands must already be reduced below `modulus`.
    pub fn add_mod(&self, rhs: &U256, modulus: &U256) -> U256 {
        debug_assert!(self < modulus && rhs < modulus);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= modulus {
            sum.wrapping_sub(modulus)
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - rhs) mod modulus`.
    ///
    /// Both operands must already be reduced below `modulus`.
    pub fn sub_mod(&self, rhs: &U256, modulus: &U256) -> U256 {
        debug_assert!(self < modulus && rhs < modulus);
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(modulus)
        } else {
            diff
        }
    }

    /// Modular multiplication: `(self * rhs) mod modulus` via the 512-bit
    /// widening product.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn mul_mod(&self, rhs: &U256, modulus: &U256) -> U256 {
        self.widening_mul(rhs).rem_u256(modulus)
    }

    /// Modular multiplicative inverse: the `x` with
    /// `self · x ≡ 1 (mod modulus)`, or `None` when
    /// `gcd(self, modulus) ≠ 1`.
    ///
    /// Implemented as the extended Euclidean algorithm with signs
    /// tracked separately (the values stay non-negative).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or one.
    ///
    /// # Examples
    ///
    /// ```rust
    /// use curb_crypto::U256;
    ///
    /// let m = U256::from_u64(97);
    /// let inv = U256::from_u64(31).mod_inverse(&m).unwrap();
    /// assert_eq!(U256::from_u64(31).mul_mod(&inv, &m), U256::ONE);
    /// assert!(U256::from_u64(0).mod_inverse(&m).is_none());
    /// ```
    pub fn mod_inverse(&self, modulus: &U256) -> Option<U256> {
        assert!(modulus > &U256::ONE, "modulus must exceed one");
        let mut r0 = *modulus;
        let mut r1 = self.rem(modulus);
        if r1.is_zero() {
            return None;
        }
        // Coefficients of `self` in each remainder, with explicit sign.
        let mut t0 = (U256::ZERO, false);
        let mut t1 = (U256::ONE, false);
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 (signed)
            let qt1 = q
                .checked_mul(&t1.0)
                .expect("coefficients stay below modulus^2");
            let t2 = signed_sub(t0, (qt1, t1.1));
            r0 = r1;
            r1 = r;
            t0 = t1;
            t1 = t2;
        }
        if r0 != U256::ONE {
            return None; // not coprime
        }
        let (mag, neg) = t0;
        let reduced = mag.rem(modulus);
        Some(if neg && !reduced.is_zero() {
            modulus.wrapping_sub(&reduced)
        } else {
            reduced
        })
    }

    /// Modular exponentiation: `self^exp mod modulus` by square and
    /// multiply.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn pow_mod(&self, exp: &U256, modulus: &U256) -> U256 {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus == &U256::ONE {
            return U256::ZERO;
        }
        let mut result = U256::ONE;
        let mut base = self.rem(modulus);
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            if i + 1 < nbits {
                base = base.mul_mod(&base, modulus);
            }
        }
        result
    }
}

/// `a - b` on sign-magnitude pairs `(magnitude, is_negative)`.
fn signed_sub(a: (U256, bool), b: (U256, bool)) -> (U256, bool) {
    match (a.1, b.1) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) | (true, false) => (a.0.checked_add(&b.0).expect("magnitudes bounded"), a.1),
        // same sign: subtract magnitudes
        _ => {
            if a.0 >= b.0 {
                (a.0.wrapping_sub(&b.0), a.1)
            } else {
                (b.0.wrapping_sub(&a.0), !a.1)
            }
        }
    }
}

impl U512 {
    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 8]
    }

    /// Number of bits required to represent the value.
    pub fn bits(&self) -> usize {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Reduces the 512-bit value modulo a 256-bit modulus.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_u256(&self, modulus: &U256) -> U256 {
        assert!(!modulus.is_zero(), "division by zero");
        // Binary reduction: feed one bit at a time into a 256+1-bit
        // accumulator kept below `modulus`.
        let mut acc = U256::ZERO;
        for i in (0..self.bits()).rev() {
            // acc = acc*2 + bit, then conditionally subtract modulus.
            let carry = acc.bit(255);
            acc = acc.wrapping_shl(1);
            if self.bit(i) {
                acc.0[0] |= 1;
            }
            if carry || &acc >= modulus {
                acc = acc.wrapping_sub(modulus);
            }
        }
        acc
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;

    /// # Panics
    ///
    /// Panics on overflow; use [`U256::wrapping_add`] or
    /// [`U256::checked_add`] for explicit overflow handling.
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(&rhs).expect("U256 addition overflow")
    }
}

impl Sub for U256 {
    type Output = U256;

    /// # Panics
    ///
    /// Panics on underflow; use [`U256::wrapping_sub`] or
    /// [`U256::checked_sub`] for explicit underflow handling.
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(&rhs).expect("U256 subtraction underflow")
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, n: u32) -> U256 {
        self.wrapping_shl(n)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, n: u32) -> U256 {
        self.wrapping_shr(n)
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x")?;
        for limb in self.0.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hexadecimal without leading zeros; decimal conversion is not
        // needed anywhere in the workspace.
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for limb in self.0.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(0x")?;
        for limb in self.0.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(u(10) + u(32), u(42));
        assert_eq!(u(42) - u(10), u(32));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        let (s, c) = a.overflowing_add(&U256::ONE);
        assert!(!c);
        assert_eq!(s, U256([0, 1, 0, 0]));
    }

    #[test]
    fn add_overflow_detected() {
        let (v, c) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(c);
        assert_eq!(v, U256::ZERO);
        assert!(U256::MAX.checked_add(&U256::ONE).is_none());
    }

    #[test]
    fn sub_borrow_detected() {
        let (v, b) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(b);
        assert_eq!(v, U256::MAX);
        assert!(U256::ZERO.checked_sub(&U256::ONE).is_none());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_operator_panics_on_overflow() {
        let _ = U256::MAX + U256::ONE;
    }

    #[test]
    fn shifts_roundtrip() {
        let v = u(0xDEAD_BEEF_CAFE_BABE);
        assert_eq!(v.wrapping_shl(100).wrapping_shr(100), v);
        assert_eq!(v.wrapping_shl(256), U256::ZERO);
        assert_eq!(v.wrapping_shr(256), U256::ZERO);
        assert_eq!(v.wrapping_shl(0), v);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(u(0x8000_0000_0000_0000).bits(), 64);
        assert_eq!(U256::MAX.bits(), 256);
        assert!(u(0b100).bit(2));
        assert!(!u(0b100).bit(1));
    }

    #[test]
    fn widening_mul_matches_u128() {
        let a = u(0xFFFF_FFFF_FFFF_FFFF);
        let b = u(0xFFFF_FFFF_FFFF_FFFF);
        let wide = a.widening_mul(&b);
        let expected = 0xFFFF_FFFF_FFFF_FFFFu128 * 0xFFFF_FFFF_FFFF_FFFFu128;
        assert_eq!(wide.0[0], expected as u64);
        assert_eq!(wide.0[1], (expected >> 64) as u64);
        assert!(wide.0[2..].iter().all(|&l| l == 0));
    }

    #[test]
    fn mul_max_by_max() {
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        let wide = U256::MAX.widening_mul(&U256::MAX);
        assert_eq!(wide.0[0], 1);
        assert_eq!(wide.0[1], 0);
        assert_eq!(wide.0[4], u64::MAX - 1);
        assert_eq!(wide.0[7], u64::MAX);
    }

    #[test]
    fn checked_mul_overflow() {
        assert!(U256::MAX.checked_mul(&u(2)).is_none());
        assert_eq!(u(6).checked_mul(&u(7)), Some(u(42)));
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = u(100).div_rem(&u(7));
        assert_eq!(q, u(14));
        assert_eq!(r, u(2));
        let (q, r) = u(5).div_rem(&u(100));
        assert_eq!(q, U256::ZERO);
        assert_eq!(r, u(5));
        let (q, r) = u(100).div_rem(&u(100));
        assert_eq!(q, U256::ONE);
        assert_eq!(r, U256::ZERO);
    }

    #[test]
    fn div_rem_wide_values() {
        // (MAX / 3) * 3 + MAX % 3 == MAX
        let three = u(3);
        let (q, r) = U256::MAX.div_rem(&three);
        let back = q.checked_mul(&three).unwrap().checked_add(&r).unwrap();
        assert_eq!(back, U256::MAX);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = u(1).div_rem(&U256::ZERO);
    }

    #[test]
    fn rem_u512() {
        let a = u(u128::MAX);
        let wide = a.widening_mul(&a);
        let m = u(1_000_000_007);
        let got = wide.rem_u256(&m);
        // Compute expected via u128 arithmetic: (2^128-1)^2 mod p
        let p = 1_000_000_007u128;
        let x = u128::MAX % p;
        let expected = (x * x) % p;
        assert_eq!(got, u(expected));
    }

    #[test]
    fn mod_arithmetic() {
        let m = u(97);
        assert_eq!(u(50).add_mod(&u(60), &m), u(13));
        assert_eq!(u(10).sub_mod(&u(20), &m), u(87));
        assert_eq!(u(12).mul_mod(&u(34), &m), u(12 * 34 % 97));
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = u(1_000_000_007);
        let a = u(123_456_789);
        assert_eq!(a.pow_mod(&u(1_000_000_006), &p), U256::ONE);
        assert_eq!(a.pow_mod(&U256::ZERO, &p), U256::ONE);
        assert_eq!(a.pow_mod(&U256::ONE, &p), a);
    }

    #[test]
    fn pow_mod_modulus_one() {
        assert_eq!(u(5).pow_mod(&u(3), &U256::ONE), U256::ZERO);
    }

    #[test]
    fn mod_inverse_small_field() {
        let p = u(97);
        for a in 1..97u128 {
            let inv = u(a).mod_inverse(&p).expect("field element invertible");
            assert_eq!(u(a).mul_mod(&inv, &p), U256::ONE, "a = {a}");
        }
        assert!(U256::ZERO.mod_inverse(&p).is_none());
        assert!(u(97).mod_inverse(&p).is_none(), "0 mod p");
    }

    #[test]
    fn mod_inverse_composite_modulus() {
        let m = u(12);
        assert_eq!(u(5).mod_inverse(&m), Some(u(5))); // 5*5=25=1 mod 12
        assert!(u(4).mod_inverse(&m).is_none()); // gcd 4
        assert!(u(6).mod_inverse(&m).is_none()); // gcd 6
    }

    #[test]
    fn mod_inverse_large_prime() {
        // secp256k1 field prime.
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        let a = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
            .unwrap();
        let inv = a.mod_inverse(&p).expect("prime field");
        assert_eq!(a.mul_mod(&inv, &p), U256::ONE);
    }

    #[test]
    #[should_panic(expected = "modulus must exceed one")]
    fn mod_inverse_tiny_modulus_panics() {
        let _ = u(3).mod_inverse(&U256::ONE);
    }

    #[test]
    fn hex_roundtrip() {
        let v = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        assert_eq!(
            format!("{v:x}"),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"
        );
        assert_eq!(U256::from_hex("0"), Some(U256::ZERO));
        assert_eq!(U256::from_hex("ff"), Some(u(255)));
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex("xyz").is_none());
        assert!(U256::from_hex(&"f".repeat(65)).is_none());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
            .unwrap();
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        let one_bytes = U256::ONE.to_be_bytes();
        assert_eq!(one_bytes[31], 1);
        assert!(one_bytes[..31].iter().all(|&b| b == 0));
    }

    #[test]
    fn ordering() {
        assert!(U256::ZERO < U256::ONE);
        assert!(U256::ONE < U256::MAX);
        assert!(U256([0, 1, 0, 0]) > U256([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", U256::ZERO), "0x0");
        assert_eq!(format!("{}", u(255)), "0xff");
        assert!(format!("{:?}", U256::ONE).starts_with("U256(0x"));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(u(0b1100) & u(0b1010), u(0b1000));
        assert_eq!(u(0b1100) | u(0b1010), u(0b1110));
        assert_eq!(u(0b1100) ^ u(0b1010), u(0b0110));
    }
}

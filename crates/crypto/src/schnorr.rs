//! Schnorr signatures over the multiplicative group of a 256-bit prime
//! field.
//!
//! Every Curb controller generates a key pair at initialisation (Step 0
//! of the protocol) and broadcasts its public key as its identity; every
//! request, reply and transaction is signed. This module provides that
//! scheme:
//!
//! * **Group**: `Z_p^*` with `p` the secp256k1 field prime
//!   (`2^256 - 2^32 - 977`) and generator `g = 5`. Exponents live in
//!   `Z_{p-1}`.
//! * **Sign**: sample nonce `k`, compute `R = g^k`,
//!   `e = H(R ‖ pk ‖ m) mod (p-1)`, `s = k + e·x mod (p-1)`.
//! * **Verify**: recompute `e` and check `g^s = R · y^e (mod p)`.
//!
//! This is structurally a textbook Schnorr scheme; the group is
//! simulation-grade (see the crate-level security note).

use crate::rng::DetRng;
use crate::sha256::digest_parts;
use crate::u256::U256;
use core::fmt;

/// The field prime `p = 2^256 - 2^32 - 977` (the secp256k1 base-field
/// prime, reused here as a convenient 256-bit prime).
pub fn modulus() -> U256 {
    U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
        .expect("valid hex constant")
}

/// The exponent modulus `p - 1`.
pub fn group_order() -> U256 {
    modulus().wrapping_sub(&U256::ONE)
}

/// The group generator, `g = 5`.
pub fn generator() -> U256 {
    U256::from_u64(5)
}

/// A secret signing key (an exponent in `Z_{p-1}`).
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(U256);

/// A public verification key (`g^x mod p`), doubling as a node identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(U256);

/// A Schnorr signature `(R, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The nonce commitment `R = g^k mod p`.
    pub r: U256,
    /// The response `s = k + e·x mod (p-1)`.
    pub s: U256,
}

/// A secret/public key pair.
///
/// # Examples
///
/// ```rust
/// use curb_crypto::{KeyPair, rng::DetRng};
///
/// let mut rng = DetRng::new(1);
/// let kp = KeyPair::generate(&mut rng);
/// let sig = kp.sign(b"msg", &mut rng);
/// assert!(kp.public().verify(b"msg", &sig));
/// ```
#[derive(Clone)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

fn random_exponent(rng: &mut DetRng) -> U256 {
    // Rejection-sample a uniform exponent in [1, p-2].
    let order = group_order();
    loop {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        let v = U256::from_be_bytes(&bytes);
        if !v.is_zero() && v < order {
            return v;
        }
    }
}

/// Fiat–Shamir challenge `e = H(R ‖ pk ‖ m) mod (p-1)`.
fn challenge(r: &U256, public: &PublicKey, message: &[u8]) -> U256 {
    let d = digest_parts(&[&r.to_be_bytes(), &public.0.to_be_bytes(), message]);
    U256::from_be_bytes(d.as_bytes()).rem(&group_order())
}

impl KeyPair {
    /// Generates a fresh key pair from the given RNG.
    pub fn generate(rng: &mut DetRng) -> Self {
        let x = random_exponent(rng);
        let y = generator().pow_mod(&x, &modulus());
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(y),
        }
    }

    /// Returns the public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a nonce drawn from `rng`.
    pub fn sign(&self, message: &[u8], rng: &mut DetRng) -> Signature {
        let p = modulus();
        let order = group_order();
        let k = random_exponent(rng);
        let r = generator().pow_mod(&k, &p);
        let e = challenge(&r, &self.public, message);
        // s = k + e*x mod (p-1)
        let ex = e.mul_mod(&self.secret.0, &order);
        let s = k.add_mod(&ex, &order);
        Signature { r, s }
    }
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    ///
    /// Returns `false` for any tampered message, signature or key.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let p = modulus();
        if sig.r.is_zero() || sig.r >= p {
            return false;
        }
        let e = challenge(&sig.r, self, message);
        // g^s == R * y^e (mod p)
        let lhs = generator().pow_mod(&sig.s, &p);
        let rhs = sig.r.mul_mod(&self.0.pow_mod(&e, &p), &p);
        lhs == rhs
    }

    /// Returns the key as a scalar, used for deterministic ordering
    /// (e.g. final-committee leader = highest ID).
    pub fn as_scalar(&self) -> U256 {
        self.0
    }

    /// Serialises the key to 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Reads a key back from [`PublicKey::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        PublicKey(U256::from_be_bytes(bytes))
    }
}

impl Signature {
    /// Serialises the signature to 64 bytes (`R ‖ s`).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Reads a signature back from [`Signature::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let r = U256::from_be_bytes(bytes[..32].try_into().expect("32 bytes"));
        let s = U256::from_be_bytes(bytes[32..].try_into().expect("32 bytes"));
        Signature { r, s }
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(redacted)")
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({})", self.0)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyPair(pk={})", self.public.0)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature(r={}, s={})", self.r, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = DetRng::new(100);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"packet-in request", &mut rng);
        assert!(kp.public().verify(b"packet-in request", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = DetRng::new(101);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"original", &mut rng);
        assert!(!kp.public().verify(b"forged", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = DetRng::new(102);
        let kp1 = KeyPair::generate(&mut rng);
        let kp2 = KeyPair::generate(&mut rng);
        let sig = kp1.sign(b"msg", &mut rng);
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = DetRng::new(103);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg", &mut rng);
        let bad_s = Signature {
            r: sig.r,
            s: sig.s.add_mod(&U256::ONE, &group_order()),
        };
        assert!(!kp.public().verify(b"msg", &bad_s));
        let bad_r = Signature {
            r: sig.r.add_mod(&U256::ONE, &modulus()),
            s: sig.s,
        };
        assert!(!kp.public().verify(b"msg", &bad_r));
    }

    #[test]
    fn zero_r_rejected() {
        let mut rng = DetRng::new(104);
        let kp = KeyPair::generate(&mut rng);
        let sig = Signature {
            r: U256::ZERO,
            s: U256::from_u64(7),
        };
        assert!(!kp.public().verify(b"msg", &sig));
    }

    #[test]
    fn signatures_are_nonce_randomised() {
        let mut rng = DetRng::new(105);
        let kp = KeyPair::generate(&mut rng);
        let s1 = kp.sign(b"msg", &mut rng);
        let s2 = kp.sign(b"msg", &mut rng);
        assert_ne!(s1, s2, "distinct nonces must yield distinct signatures");
        assert!(kp.public().verify(b"msg", &s1));
        assert!(kp.public().verify(b"msg", &s2));
    }

    #[test]
    fn key_and_signature_serialisation_roundtrip() {
        let mut rng = DetRng::new(106);
        let kp = KeyPair::generate(&mut rng);
        let pk2 = PublicKey::from_bytes(&kp.public().to_bytes());
        assert_eq!(pk2, kp.public());
        let sig = kp.sign(b"serial", &mut rng);
        let sig2 = Signature::from_bytes(&sig.to_bytes());
        assert_eq!(sig, sig2);
        assert!(pk2.verify(b"serial", &sig2));
    }

    #[test]
    fn deterministic_keygen_from_seed() {
        let mut a = DetRng::new(55);
        let mut b = DetRng::new(55);
        assert_eq!(
            KeyPair::generate(&mut a).public(),
            KeyPair::generate(&mut b).public()
        );
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let mut rng = DetRng::new(107);
        let kp = KeyPair::generate(&mut rng);
        assert_eq!(format!("{:?}", kp.secret), "SecretKey(redacted)");
    }

    #[test]
    fn empty_message_signs() {
        let mut rng = DetRng::new(108);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"", &mut rng);
        assert!(kp.public().verify(b"", &sig));
        assert!(!kp.public().verify(b"x", &sig));
    }

    #[test]
    fn group_parameters_consistent() {
        assert_eq!(group_order().wrapping_add(&U256::ONE), modulus());
        // g must not be the identity and must be < p.
        assert!(generator() > U256::ONE);
        assert!(generator() < modulus());
    }
}

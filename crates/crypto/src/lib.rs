//! Cryptographic substrate for the Curb control plane.
//!
//! The Curb paper signs every request, reply and transaction with a
//! public-key signature scheme (pure-Python ECDSA in the original
//! artifact). This crate rebuilds that substrate from scratch:
//!
//! * [`sha256`] — a FIPS 180-4 SHA-256 implementation, validated against
//!   the NIST test vectors.
//! * [`u256`] — fixed-width 256-bit unsigned integer arithmetic
//!   (with a 512-bit widening product) used by the signature scheme.
//! * [`schnorr`] — Schnorr signatures over the multiplicative group of a
//!   256-bit prime field.
//! * [`rng`] — a small deterministic RNG so that whole-network simulations
//!   are reproducible from a single seed.
//!
//! # Security note
//!
//! The discrete-log group used by [`schnorr`] is a *simulation-grade*
//! group: it is structurally a real Schnorr scheme (key generation,
//! signing, verification, tamper detection) but the group parameters are
//! not hardened, so it must not be used against a real adversary. This
//! substitution is documented in the repository's `DESIGN.md`.
//!
//! # Examples
//!
//! ```rust
//! use curb_crypto::{KeyPair, sha256::Digest};
//!
//! let mut rng = curb_crypto::rng::DetRng::new(42);
//! let keys = KeyPair::generate(&mut rng);
//! let sig = keys.sign(b"flow rule update", &mut rng);
//! assert!(keys.public().verify(b"flow rule update", &sig));
//! assert!(!keys.public().verify(b"tampered", &sig));
//! let _digest: Digest = curb_crypto::sha256::digest(b"abc");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;
pub mod schnorr;
pub mod sha256;
pub mod u256;

pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::Digest;
pub use u256::U256;

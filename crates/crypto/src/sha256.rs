//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Provides a one-shot [`digest`] function and an incremental
//! [`Sha256`] hasher. The implementation is validated against the NIST
//! short/long-message test vectors in the unit tests.

use core::fmt;

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first eight primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte SHA-256 digest.
///
/// # Examples
///
/// ```rust
/// use curb_crypto::sha256::digest;
///
/// let d = digest(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the previous-hash of a genesis block.
    pub const ZERO: Digest = Digest([0; 32]);

    /// Renders the digest as 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a digest from 64 hex characters.
    ///
    /// # Errors
    ///
    /// Returns `None` for wrong-length or non-hex input.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for (i, b) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *b = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns the first 8 bytes as a `u64`, handy as a short identifier.
    pub fn short_id(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```rust
/// use curb_crypto::sha256::{digest, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), digest(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64-byte chunk");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// `update` without advancing `total_len` (padding bytes do not count
    /// toward the message length).
    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffer_len] = byte;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices, with each slice
/// length-prefixed so distinct splits cannot collide.
///
/// # Examples
///
/// ```rust
/// use curb_crypto::sha256::digest_parts;
///
/// // ["ab", "c"] and ["a", "bc"] hash differently.
/// assert_ne!(digest_parts(&[b"ab", b"c"]), digest_parts(&[b"a", b"bc"]));
/// ```
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for part in parts {
        h.update(&(part.len() as u64).to_be_bytes());
        h.update(part);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_empty() {
        assert_eq!(
            digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_448_bit_boundary() {
        // Exactly 56 bytes forces the length into a second padding block.
        let msg = [0x61u8; 56];
        assert_eq!(
            digest(&msg).to_hex(),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
    }

    #[test]
    fn nist_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            digest(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for &b in data.iter() {
            h.update(&[b]);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = digest(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert!(Digest::from_hex("short").is_none());
        assert!(Digest::from_hex(&"zz".repeat(32)).is_none());
    }

    #[test]
    fn digest_parts_is_injective_over_splits() {
        assert_ne!(digest_parts(&[b"ab", b"c"]), digest_parts(&[b"a", b"bc"]));
        assert_ne!(digest_parts(&[b"abc"]), digest_parts(&[b"abc", b""]));
    }

    #[test]
    fn short_id_is_prefix() {
        let d = digest(b"id");
        let id = d.short_id();
        assert_eq!(&id.to_be_bytes()[..], &d.0[..8]);
    }

    #[test]
    fn debug_display_nonempty() {
        let d = digest(b"x");
        assert!(!format!("{d:?}").is_empty());
        assert_eq!(format!("{d}").len(), 64);
    }
}

//! Deterministic random number generation.
//!
//! Every stochastic choice in the Curb simulation (key generation, nonce
//! sampling, workload arrival, byzantine delays) flows through a
//! [`DetRng`] so that an entire experiment is reproducible from a single
//! seed. The generator is SplitMix64 followed by xoshiro256\*\*, the
//! textbook construction for seeding a 256-bit state from a 64-bit seed.

/// A deterministic, seedable random number generator (xoshiro256\*\*).
///
/// Not cryptographically secure; the simulation only needs
/// reproducibility and good statistical quality.
///
/// # Examples
///
/// ```rust
/// use curb_crypto::rng::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Self { state }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated node its own stream.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut rng = DetRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = DetRng::new(11);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = rng.next_range(3, 6);
            assert!((3..=6).contains(&v));
            hit_lo |= v == 3;
            hit_hi |= v == 6;
        }
        assert!(hit_lo && hit_hi);
        assert_eq!(rng.next_range(9, 9), 9);
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::new(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = DetRng::new(21);
        let mut child = parent.fork();
        // The child stream must not simply mirror the parent stream.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::new(0).next_below(0);
    }
}

//! The simulation engine: actors, contexts and the event loop.

use crate::metrics::MessageStats;
use crate::queue::{EventPayload, EventQueue};
use crate::time::SimTime;
use core::fmt;
use core::time::Duration;
use curb_telemetry::VirtualClock;
use std::collections::HashSet;
use std::sync::Arc;

/// Identifier of a node (actor) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Tag attached to a timer when it is set, returned when it fires.
pub type TimerTag = u64;

/// A message that can travel through the simulated network.
///
/// `size_bytes` feeds the serialization-delay model and the byte
/// counters; `category` buckets the message for complexity accounting.
pub trait Message: Clone {
    /// Wire size of this message in bytes.
    fn size_bytes(&self) -> usize;
    /// Short category label, e.g. `"PRE-PREPARE"` or `"AGREE"`.
    fn category(&self) -> &'static str;
}

/// Protocol logic attached to a node.
pub trait Actor<M: Message> {
    /// Called when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: TimerTag) {}
}

/// Side effects an actor may request while handling an event.
#[derive(Debug)]
enum Effect<M> {
    Send {
        to: NodeId,
        msg: M,
        extra_delay: Duration,
    },
    Timer {
        delay: Duration,
        tag: TimerTag,
    },
}

/// Handle through which an actor interacts with the simulation during a
/// single event callback.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    effects: &'a mut Vec<Effect<M>>,
}

impl<M> Context<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback is running on.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to`; it arrives after the link delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_delay: Duration::ZERO,
        });
    }

    /// Sends `msg` to `to` with an additional artificial delay on top of
    /// the link delay. Used to model "lazy" byzantine controllers that
    /// respond slowly but within the timeout.
    pub fn send_delayed(&mut self, to: NodeId, msg: M, extra_delay: Duration) {
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_delay,
        });
    }

    /// Schedules [`Actor::on_timer`] on this node after `delay`.
    pub fn set_timer(&mut self, delay: Duration, tag: TimerTag) {
        self.effects.push(Effect::Timer { delay, tag });
    }
}

/// How propagation delay between node pairs is determined.
#[derive(Debug, Clone)]
enum DelayStrategy {
    Uniform(Duration),
    Matrix(Vec<Vec<Duration>>),
}

/// The discrete-event simulation: a set of actors, a virtual clock and a
/// network with delays and fault injection.
///
/// See the crate-level docs for a complete example.
pub struct Simulation<M: Message, A: Actor<M>> {
    actors: Vec<A>,
    queue: EventQueue<M>,
    clock: SimTime,
    delays: DelayStrategy,
    bandwidth_bps: Option<f64>,
    down: Vec<bool>,
    blocked: HashSet<(usize, usize)>,
    stats: MessageStats,
    max_events: u64,
    processed: u64,
    /// Per-node message service time: a node processes one message at a
    /// time, each occupying it for this long (models CPU cost and
    /// creates realistic queueing under load).
    service_time: Vec<Duration>,
    busy_until: Vec<SimTime>,
    /// Probability that any delivery is silently dropped (deterministic
    /// per seed); 0 disables loss.
    loss_rate: f64,
    loss_rng: u64,
    dropped: u64,
    /// Mirror of the virtual clock for the telemetry tracer: advanced
    /// with every processed event, so spans recorded by actor code
    /// (e.g. the consensus state machine) carry virtual-time stamps
    /// once this clock is installed via
    /// [`Simulation::install_telemetry_clock`].
    telemetry_clock: Arc<VirtualClock>,
}

impl<M: Message + fmt::Debug, A: Actor<M>> fmt::Debug for Simulation<M, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("actors", &self.actors.len())
            .field("clock", &self.clock)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<M: Message, A: Actor<M>> Simulation<M, A> {
    /// Creates a simulation over the given actors. Node `i` runs
    /// `actors[i]`. Link delay defaults to zero; set it with
    /// [`Simulation::set_uniform_delay`] or
    /// [`Simulation::set_delay_matrix`].
    pub fn new(actors: Vec<A>) -> Self {
        let n = actors.len();
        Simulation {
            actors,
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            delays: DelayStrategy::Uniform(Duration::ZERO),
            bandwidth_bps: None,
            down: vec![false; n],
            blocked: HashSet::new(),
            stats: MessageStats::default(),
            max_events: 100_000_000,
            processed: 0,
            service_time: vec![Duration::ZERO; n],
            busy_until: vec![SimTime::ZERO; n],
            loss_rate: 0.0,
            loss_rng: 0x10551055,
            dropped: 0,
            telemetry_clock: Arc::new(VirtualClock::new()),
        }
    }

    /// Installs this simulation's virtual clock as the process-wide
    /// telemetry clock, so tracing spans recorded by actor code carry
    /// virtual timestamps instead of wall-clock ones. Call before
    /// `curb_telemetry::enable()`; with several simulations alive, the
    /// last installer wins (the tracer clock is process-global).
    pub fn install_telemetry_clock(&self) {
        curb_telemetry::set_clock(self.telemetry_clock.clone() as Arc<dyn curb_telemetry::Clock>);
    }

    /// The virtual-time mirror driven by this simulation's event loop.
    pub fn telemetry_clock(&self) -> Arc<VirtualClock> {
        self.telemetry_clock.clone()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Uses the same propagation delay for every link.
    pub fn set_uniform_delay(&mut self, d: Duration) {
        self.delays = DelayStrategy::Uniform(d);
    }

    /// Uses a full per-pair propagation delay matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n` for `n` nodes.
    pub fn set_delay_matrix(&mut self, m: Vec<Vec<Duration>>) {
        let n = self.actors.len();
        assert_eq!(m.len(), n, "delay matrix must be n x n");
        assert!(
            m.iter().all(|row| row.len() == n),
            "delay matrix must be n x n"
        );
        self.delays = DelayStrategy::Matrix(m);
    }

    /// Adds a serialization delay of `size_bytes * 8 / bps` to every
    /// message. `None` (the default) disables serialization delay.
    pub fn set_bandwidth_bps(&mut self, bps: Option<f64>) {
        if let Some(b) = bps {
            assert!(b > 0.0, "bandwidth must be positive");
        }
        self.bandwidth_bps = bps;
    }

    /// Caps the number of events processed by a single `run_*` call;
    /// guards against protocol bugs that generate unbounded traffic.
    pub fn set_max_events(&mut self, cap: u64) {
        self.max_events = cap;
    }

    /// Makes every delivery fail independently with probability `p`
    /// (a lossy network). The loss pattern is deterministic per
    /// simulation (seeded internally), so runs stay reproducible.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn set_loss_rate(&mut self, p: f64) {
        assert!((0.0..1.0).contains(&p), "loss rate must be in [0, 1)");
        self.loss_rate = p;
    }

    /// Number of deliveries dropped by the loss model so far.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped
    }

    fn lose(&mut self) -> bool {
        if self.loss_rate == 0.0 {
            return false;
        }
        // SplitMix64 step; uniform in [0, 1).
        self.loss_rng = self.loss_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.loss_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.loss_rate {
            self.dropped += 1;
            true
        } else {
            false
        }
    }

    /// Sets the message service time of `node`: the node handles one
    /// message at a time, each occupying it for `d`. Messages arriving
    /// while it is busy queue up (approximately FIFO), so latency grows
    /// naturally with load. Timers are local and never queued.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_service_time(&mut self, node: NodeId, d: Duration) {
        self.service_time[node.0] = d;
    }

    /// Marks a node as crashed (`true`): pending and future deliveries
    /// and timers for it are discarded until it is brought back up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        self.down[node.0] = down;
    }

    /// Returns whether a node is currently marked down.
    pub fn is_node_down(&self, node: NodeId) -> bool {
        self.down[node.0]
    }

    /// Blocks the (bidirectional) link between `a` and `b`; messages in
    /// either direction are silently dropped at delivery time.
    pub fn block_link(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert(ordered(a.0, b.0));
    }

    /// Removes a block installed by [`Simulation::block_link`].
    pub fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        self.blocked.remove(&ordered(a.0, b.0));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Message counters.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Clears the message counters (e.g. between experiment rounds).
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }

    /// Immutable access to the actor on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn actor(&self, node: NodeId) -> &A {
        &self.actors[node.0]
    }

    /// Mutable access to the actor on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.actors[node.0]
    }

    /// Iterates over all actors.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.actors.iter()
    }

    /// Injects a message from outside the actor set (e.g. a host handing
    /// a packet to a switch); it is delivered after the usual link delay.
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.post_at(self.clock, from, to, msg);
    }

    /// Injects a message that *departs* at `time` (must not be in the
    /// simulated past).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current virtual time.
    pub fn post_at(&mut self, time: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(time >= self.clock, "cannot post into the past");
        let arrival = time + self.link_delay(from, to, msg.size_bytes());
        self.stats.record(msg.category(), msg.size_bytes());
        self.queue
            .schedule(arrival, to, EventPayload::Deliver { from, msg });
    }

    /// Schedules a timer on `node` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current virtual time.
    pub fn schedule_timer_at(&mut self, time: SimTime, node: NodeId, tag: TimerTag) {
        assert!(time >= self.clock, "cannot schedule into the past");
        self.queue.schedule(time, node, EventPayload::Timer { tag });
    }

    fn link_delay(&self, from: NodeId, to: NodeId, bytes: usize) -> Duration {
        let prop = if from == to {
            Duration::ZERO
        } else {
            match &self.delays {
                DelayStrategy::Uniform(d) => *d,
                DelayStrategy::Matrix(m) => m[from.0][to.0],
            }
        };
        let ser = match self.bandwidth_bps {
            Some(bps) => Duration::from_secs_f64(bytes as f64 * 8.0 / bps),
            None => Duration::ZERO,
        };
        prop + ser
    }

    /// Runs until no events remain (or the event cap is hit). Returns
    /// the number of events processed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_while(|_| true)
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline`. The clock never advances past `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let n = self.run_while(|t| t <= deadline);
        if self.clock < deadline {
            self.clock = deadline;
            self.telemetry_clock.set_nanos(self.clock.as_nanos());
        }
        n
    }

    fn run_while(&mut self, keep_going: impl Fn(SimTime) -> bool) -> u64 {
        let mut processed = 0u64;
        while let Some(t) = self.queue.peek_time() {
            if !keep_going(t) {
                break;
            }
            if processed >= self.max_events {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            debug_assert!(event.time >= self.clock, "time must be monotone");
            self.clock = event.time;
            self.telemetry_clock.set_nanos(self.clock.as_nanos());
            processed += 1;
            self.processed += 1;
            let target = event.target;
            if self.down[target.0] {
                continue;
            }
            let mut effects = Vec::new();
            {
                let mut ctx = Context {
                    now: self.clock,
                    self_id: target,
                    effects: &mut effects,
                };
                match event.payload {
                    EventPayload::Deliver { from, msg } => {
                        if self.blocked.contains(&ordered(from.0, target.0)) {
                            continue;
                        }
                        if self.lose() {
                            continue;
                        }
                        // Service-time model: a busy node defers the
                        // message until it frees up.
                        if self.busy_until[target.0] > event.time {
                            let at = self.busy_until[target.0];
                            self.queue
                                .schedule(at, target, EventPayload::Deliver { from, msg });
                            continue;
                        }
                        let service = self.service_time[target.0];
                        if !service.is_zero() {
                            self.busy_until[target.0] = event.time + service;
                        }
                        self.actors[target.0].on_message(&mut ctx, from, msg);
                    }
                    EventPayload::Timer { tag } => {
                        self.actors[target.0].on_timer(&mut ctx, tag);
                    }
                }
            }
            for effect in effects {
                match effect {
                    Effect::Send {
                        to,
                        msg,
                        extra_delay,
                    } => {
                        let arrival = self.clock
                            + self.link_delay(target, to, msg.size_bytes())
                            + extra_delay;
                        self.stats.record(msg.category(), msg.size_bytes());
                        self.queue.schedule(
                            arrival,
                            to,
                            EventPayload::Deliver { from: target, msg },
                        );
                    }
                    Effect::Timer { delay, tag } => {
                        self.queue.schedule(
                            self.clock + delay,
                            target,
                            EventPayload::Timer { tag },
                        );
                    }
                }
            }
        }
        processed
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u64);

    impl Message for Num {
        fn size_bytes(&self) -> usize {
            100
        }
        fn category(&self) -> &'static str {
            "num"
        }
    }

    /// Records every delivery with its arrival time; replies once.
    struct Recorder {
        log: Vec<(SimTime, NodeId, u64)>,
        reply: bool,
    }

    impl Recorder {
        fn new(reply: bool) -> Self {
            Recorder {
                log: Vec::new(),
                reply,
            }
        }
    }

    impl Actor<Num> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: NodeId, msg: Num) {
            self.log.push((ctx.now(), from, msg.0));
            if self.reply {
                ctx.send(from, Num(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Num>, tag: TimerTag) {
            self.log.push((ctx.now(), ctx.self_id(), 1_000_000 + tag));
        }
    }

    fn two_nodes(reply: bool) -> Simulation<Num, Recorder> {
        let mut sim = Simulation::new(vec![Recorder::new(reply), Recorder::new(false)]);
        sim.set_uniform_delay(Duration::from_millis(10));
        sim
    }

    #[test]
    fn telemetry_clock_tracks_virtual_time() {
        use curb_telemetry::Clock;
        let mut sim = two_nodes(false);
        let tc = sim.telemetry_clock();
        assert_eq!(tc.now_nanos(), 0);
        sim.post(NodeId(0), NodeId(1), Num(7));
        sim.run_to_quiescence();
        // The delivery advanced virtual time to the 10 ms link delay.
        assert_eq!(tc.now_nanos(), Duration::from_millis(10).as_nanos() as u64);
        // run_until advances the mirror to the deadline even with an
        // empty queue.
        sim.run_until(SimTime::ZERO + Duration::from_millis(25));
        assert_eq!(tc.now_nanos(), Duration::from_millis(25).as_nanos() as u64);
    }

    #[test]
    fn delivery_respects_link_delay() {
        let mut sim = two_nodes(false);
        sim.post(NodeId(0), NodeId(1), Num(7));
        sim.run_to_quiescence();
        let log = &sim.actor(NodeId(1)).log;
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, SimTime::ZERO + Duration::from_millis(10));
        assert_eq!(log[0].2, 7);
    }

    #[test]
    fn reply_arrives_after_round_trip() {
        let mut sim = two_nodes(false);
        sim.actor_mut(NodeId(1)).reply = true;
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.run_to_quiescence();
        let log = &sim.actor(NodeId(0)).log;
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, SimTime::ZERO + Duration::from_millis(20));
        assert_eq!(log[0].2, 2);
    }

    #[test]
    fn serialization_delay_adds_to_propagation() {
        let mut sim = two_nodes(false);
        // 100 bytes = 800 bits at 100 Mbps = 8 µs
        sim.set_bandwidth_bps(Some(100_000_000.0));
        sim.post(NodeId(0), NodeId(1), Num(0));
        sim.run_to_quiescence();
        assert_eq!(
            sim.actor(NodeId(1)).log[0].0,
            SimTime::ZERO + Duration::from_millis(10) + Duration::from_micros(8)
        );
    }

    #[test]
    fn down_node_receives_nothing() {
        let mut sim = two_nodes(false);
        sim.set_node_down(NodeId(1), true);
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.run_to_quiescence();
        assert!(sim.actor(NodeId(1)).log.is_empty());
        // The message still counted as sent.
        assert_eq!(sim.stats().count("num"), 1);
    }

    #[test]
    fn node_recovers_after_up() {
        let mut sim = two_nodes(false);
        sim.set_node_down(NodeId(1), true);
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.run_to_quiescence();
        sim.set_node_down(NodeId(1), false);
        sim.post(NodeId(0), NodeId(1), Num(2));
        sim.run_to_quiescence();
        assert_eq!(sim.actor(NodeId(1)).log.len(), 1);
        assert_eq!(sim.actor(NodeId(1)).log[0].2, 2);
    }

    #[test]
    fn blocked_link_drops_messages() {
        let mut sim = two_nodes(false);
        sim.block_link(NodeId(0), NodeId(1));
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.run_to_quiescence();
        assert!(sim.actor(NodeId(1)).log.is_empty());
        sim.unblock_link(NodeId(1), NodeId(0)); // order-insensitive
        sim.post(NodeId(0), NodeId(1), Num(2));
        sim.run_to_quiescence();
        assert_eq!(sim.actor(NodeId(1)).log.len(), 1);
    }

    #[test]
    fn timers_fire_at_requested_time() {
        let mut sim = two_nodes(false);
        sim.schedule_timer_at(SimTime::ZERO + Duration::from_millis(5), NodeId(0), 42);
        sim.run_to_quiescence();
        let log = &sim.actor(NodeId(0)).log;
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, SimTime::ZERO + Duration::from_millis(5));
        assert_eq!(log[0].2, 1_000_042);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = two_nodes(false);
        sim.post(NodeId(0), NodeId(1), Num(1)); // arrives at 10ms
        let deadline = SimTime::ZERO + Duration::from_millis(5);
        sim.run_until(deadline);
        assert!(sim.actor(NodeId(1)).log.is_empty());
        assert_eq!(sim.now(), deadline);
        sim.run_to_quiescence();
        assert_eq!(sim.actor(NodeId(1)).log.len(), 1);
    }

    #[test]
    fn delay_matrix_is_per_pair() {
        let mut sim = Simulation::new(vec![
            Recorder::new(false),
            Recorder::new(false),
            Recorder::new(false),
        ]);
        let z = Duration::ZERO;
        let d01 = Duration::from_millis(1);
        let d02 = Duration::from_millis(30);
        sim.set_delay_matrix(vec![vec![z, d01, d02], vec![d01, z, z], vec![d02, z, z]]);
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.post(NodeId(0), NodeId(2), Num(2));
        sim.run_to_quiescence();
        assert_eq!(sim.actor(NodeId(1)).log[0].0, SimTime::ZERO + d01);
        assert_eq!(sim.actor(NodeId(2)).log[0].0, SimTime::ZERO + d02);
    }

    #[test]
    fn self_send_has_no_propagation_delay() {
        let mut sim = two_nodes(false);
        sim.post(NodeId(0), NodeId(0), Num(9));
        sim.run_to_quiescence();
        assert_eq!(sim.actor(NodeId(0)).log[0].0, SimTime::ZERO);
    }

    #[test]
    fn stats_count_sends_by_category() {
        let mut sim = two_nodes(true);
        sim.post(NodeId(1), NodeId(0), Num(1));
        sim.run_to_quiescence();
        // original + reply
        assert_eq!(sim.stats().count("num"), 2);
        assert_eq!(sim.stats().total_bytes(), 200);
        sim.reset_stats();
        assert_eq!(sim.stats().total_messages(), 0);
    }

    #[test]
    fn max_events_caps_runaway() {
        // Node 0 replies to itself forever.
        struct Loopy;
        impl Actor<Num> for Loopy {
            fn on_message(&mut self, ctx: &mut Context<'_, Num>, _from: NodeId, msg: Num) {
                ctx.send(ctx.self_id(), Num(msg.0 + 1));
            }
        }
        let mut sim = Simulation::new(vec![Loopy]);
        sim.set_max_events(1000);
        sim.post(NodeId(0), NodeId(0), Num(0));
        let processed = sim.run_to_quiescence();
        assert_eq!(processed, 1000);
        assert!(sim.pending_events() > 0);
    }

    #[test]
    fn service_time_queues_messages() {
        let mut sim = two_nodes(false);
        sim.set_service_time(NodeId(1), Duration::from_millis(5));
        // Three messages all arrive at t=10ms; they must be served at
        // 10, 15 and 20 ms.
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.post(NodeId(0), NodeId(1), Num(2));
        sim.post(NodeId(0), NodeId(1), Num(3));
        sim.run_to_quiescence();
        let times: Vec<SimTime> = sim
            .actor(NodeId(1))
            .log
            .iter()
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(
            times,
            vec![
                SimTime::ZERO + Duration::from_millis(10),
                SimTime::ZERO + Duration::from_millis(15),
                SimTime::ZERO + Duration::from_millis(20),
            ]
        );
    }

    #[test]
    fn zero_service_time_means_no_queueing() {
        let mut sim = two_nodes(false);
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.post(NodeId(0), NodeId(1), Num(2));
        sim.run_to_quiescence();
        let times: Vec<SimTime> = sim
            .actor(NodeId(1))
            .log
            .iter()
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(times[0], times[1]);
    }

    #[test]
    fn timers_bypass_service_queue() {
        let mut sim = two_nodes(false);
        sim.set_service_time(NodeId(1), Duration::from_millis(50));
        sim.post(NodeId(0), NodeId(1), Num(1)); // served at 10..60ms
        sim.schedule_timer_at(SimTime::ZERO + Duration::from_millis(12), NodeId(1), 9);
        sim.run_to_quiescence();
        let log = &sim.actor(NodeId(1)).log;
        // Timer fires at 12ms even though the node is "busy".
        assert!(log
            .iter()
            .any(|&(t, _, v)| v == 1_000_009 && t == SimTime::ZERO + Duration::from_millis(12)));
    }

    #[test]
    fn lossy_network_drops_deterministically() {
        let run = || {
            let mut sim = two_nodes(false);
            sim.set_loss_rate(0.5);
            for i in 0..100 {
                sim.post(NodeId(0), NodeId(1), Num(i));
            }
            sim.run_to_quiescence();
            (sim.actor(NodeId(1)).log.len(), sim.dropped_messages())
        };
        let (delivered, dropped) = run();
        assert_eq!(delivered as u64 + dropped, 100);
        // Roughly half lost.
        assert!((25..=75).contains(&delivered), "delivered {delivered}");
        // And fully reproducible.
        assert_eq!(run(), (delivered, dropped));
    }

    #[test]
    fn zero_loss_rate_delivers_everything() {
        let mut sim = two_nodes(false);
        sim.set_loss_rate(0.0);
        for i in 0..20 {
            sim.post(NodeId(0), NodeId(1), Num(i));
        }
        sim.run_to_quiescence();
        assert_eq!(sim.actor(NodeId(1)).log.len(), 20);
        assert_eq!(sim.dropped_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1)")]
    fn invalid_loss_rate_panics() {
        two_nodes(false).set_loss_rate(1.0);
    }

    #[test]
    #[should_panic(expected = "cannot post into the past")]
    fn post_into_past_panics() {
        let mut sim = two_nodes(false);
        sim.post(NodeId(0), NodeId(1), Num(1));
        sim.run_to_quiescence();
        sim.post_at(SimTime::ZERO, NodeId(0), NodeId(1), Num(2));
    }

    #[test]
    fn send_delayed_adds_extra_latency() {
        struct Lazy;
        impl Actor<Num> for Lazy {
            fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: NodeId, msg: Num) {
                ctx.send_delayed(from, msg, Duration::from_millis(100));
            }
        }
        let mut sim = Simulation::new(vec![Lazy, Lazy]);
        sim.set_uniform_delay(Duration::from_millis(10));
        sim.post(NodeId(0), NodeId(1), Num(1));
        // 10ms arrive, +10ms link +100ms lazy = 120ms, then it keeps
        // ping-ponging; cap events to observe the clock.
        sim.set_max_events(2);
        sim.run_to_quiescence();
        assert_eq!(sim.now(), SimTime::ZERO + Duration::from_millis(120));
    }
}

//! Virtual simulation time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use core::time::Duration;

/// A point in virtual time, measured in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```rust
/// use curb_sim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_duration(), Duration::from_millis(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Converts to a [`Duration`] since simulation start.
    pub const fn as_duration(&self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(&self, earlier: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero instead of
    /// panicking.
    pub fn saturating_since(&self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0 / 1_000;
        write!(f, "{}.{:03}ms", us / 1_000, us % 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_micros(1500);
        assert_eq!(t.as_nanos(), 1_500_000);
        assert_eq!(t - SimTime::ZERO, Duration::from_micros(1500));
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(b.since(a), Duration::from_nanos(150));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "must not be later")]
    fn since_panics_when_reversed() {
        SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_millis() {
        let t = SimTime::ZERO + Duration::from_micros(12_345);
        assert_eq!(format!("{t}"), "12.345ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
    }
}

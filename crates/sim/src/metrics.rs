//! Message metering.
//!
//! The O(N) message-complexity claim (Theorem 1 of the paper) is
//! validated empirically by counting every protocol message the
//! simulation delivers, bucketed by category.

use std::collections::BTreeMap;

/// Counters of messages sent through the simulated network.
///
/// # Examples
///
/// ```rust
/// use curb_sim::MessageStats;
///
/// let mut stats = MessageStats::default();
/// stats.record("AGREE", 512);
/// stats.record("AGREE", 512);
/// assert_eq!(stats.count("AGREE"), 2);
/// assert_eq!(stats.total_messages(), 2);
/// assert_eq!(stats.total_bytes(), 1024);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageStats {
    by_category: BTreeMap<&'static str, (u64, u64)>,
}

impl MessageStats {
    /// Records one message of `bytes` size under `category`.
    pub fn record(&mut self, category: &'static str, bytes: usize) {
        let entry = self.by_category.entry(category).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += bytes as u64;
    }

    /// Number of messages recorded under `category`.
    pub fn count(&self, category: &str) -> u64 {
        self.by_category.get(category).map_or(0, |(c, _)| *c)
    }

    /// Bytes recorded under `category`.
    pub fn bytes(&self, category: &str) -> u64 {
        self.by_category.get(category).map_or(0, |(_, b)| *b)
    }

    /// Total messages across all categories.
    pub fn total_messages(&self) -> u64 {
        self.by_category.values().map(|(c, _)| c).sum()
    }

    /// Total bytes across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.by_category.values().map(|(_, b)| b).sum()
    }

    /// Iterates `(category, count, bytes)` in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.by_category.iter().map(|(k, (c, b))| (*k, *c, *b))
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.by_category.clear();
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &MessageStats) {
        for (k, (c, b)) in &other.by_category {
            let entry = self.by_category.entry(k).or_insert((0, 0));
            entry.0 += c;
            entry.1 += b;
        }
    }

    /// Difference of total message counts since `baseline` (which must
    /// be an earlier snapshot of the same counters).
    pub fn messages_since(&self, baseline: &MessageStats) -> u64 {
        self.total_messages() - baseline.total_messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = MessageStats::default();
        s.record("PKT-IN", 100);
        s.record("PKT-IN", 50);
        s.record("REPLY", 10);
        assert_eq!(s.count("PKT-IN"), 2);
        assert_eq!(s.bytes("PKT-IN"), 150);
        assert_eq!(s.count("REPLY"), 1);
        assert_eq!(s.count("missing"), 0);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 160);
    }

    #[test]
    fn iter_is_sorted_by_category() {
        let mut s = MessageStats::default();
        s.record("b", 1);
        s.record("a", 1);
        let cats: Vec<_> = s.iter().map(|(k, _, _)| k).collect();
        assert_eq!(cats, vec!["a", "b"]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MessageStats::default();
        a.record("x", 1);
        let mut b = MessageStats::default();
        b.record("x", 2);
        b.record("y", 3);
        a.merge(&b);
        assert_eq!(a.count("x"), 2);
        assert_eq!(a.bytes("x"), 3);
        assert_eq!(a.count("y"), 1);
    }

    #[test]
    fn clear_resets() {
        let mut s = MessageStats::default();
        s.record("x", 1);
        s.clear();
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    fn messages_since_snapshot() {
        let mut s = MessageStats::default();
        s.record("x", 1);
        let snap = s.clone();
        s.record("x", 1);
        s.record("y", 1);
        assert_eq!(s.messages_since(&snap), 2);
    }
}

//! The deterministic event queue.

use crate::simulation::{NodeId, TimerTag};
use crate::time::SimTime;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventPayload<M> {
    /// A message from `from` is delivered to the event's target node.
    Deliver {
        /// Originating node.
        from: NodeId,
        /// The message itself.
        msg: M,
    },
    /// A timer set by the target node expires.
    Timer {
        /// The tag the node attached when setting the timer.
        tag: TimerTag,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Global insertion sequence number; breaks ties deterministically.
    pub seq: u64,
    /// Node the event is addressed to.
    pub target: NodeId,
    /// Message delivery or timer expiry.
    pub payload: EventPayload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of [`Event`]s with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for `target` at `time`.
    pub fn schedule(&mut self, time: SimTime, target: NodeId, payload: EventPayload<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[allow(dead_code)] // part of the queue's natural API surface
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::time::Duration;

    fn deliver(n: u32) -> EventPayload<u32> {
        EventPayload::Deliver {
            from: NodeId(0),
            msg: n,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::ZERO + Duration::from_millis(3),
            NodeId(1),
            deliver(3),
        );
        q.schedule(
            SimTime::ZERO + Duration::from_millis(1),
            NodeId(1),
            deliver(1),
        );
        q.schedule(
            SimTime::ZERO + Duration::from_millis(2),
            NodeId(1),
            deliver(2),
        );
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + Duration::from_millis(1);
        for i in 0..10 {
            q.schedule(t, NodeId(0), deliver(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn peek_time_and_len() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(
            SimTime::from_nanos(5),
            NodeId(0),
            EventPayload::Timer { tag: 7 },
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
    }
}

//! Deterministic discrete-event network simulator.
//!
//! This crate replaces the Mininet/Open vSwitch emulation used by the
//! Curb paper's artifact. Protocol logic runs as [`Actor`]s exchanging
//! typed messages over a simulated network with realistic delays
//! (propagation + serialization, see `curb-graph`'s `DelayModel`); the
//! simulator provides:
//!
//! * a virtual clock with nanosecond resolution ([`SimTime`]),
//! * a deterministic event queue (ties broken by sequence number, so a
//!   given seed always produces the identical execution),
//! * per-pair link delays, node crash/partition fault injection, and
//! * message metering by category (used for the paper's O(N)
//!   message-complexity experiment).
//!
//! # Examples
//!
//! A two-node ping-pong:
//!
//! ```rust
//! use curb_sim::{Actor, Context, Message, NodeId, Simulation};
//! use std::time::Duration;
//!
//! #[derive(Debug, Clone)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn size_bytes(&self) -> usize { 64 }
//!     fn category(&self) -> &'static str { "ping" }
//! }
//!
//! struct Echo { received: u32 }
//! impl Actor<Ping> for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
//!         self.received += 1;
//!         if msg.0 > 0 {
//!             ctx.send(from, Ping(msg.0 - 1));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(vec![Echo { received: 0 }, Echo { received: 0 }]);
//! sim.set_uniform_delay(Duration::from_millis(1));
//! sim.post(NodeId(0), NodeId(1), Ping(3));
//! sim.run_to_quiescence();
//! assert_eq!(sim.actor(NodeId(0)).received + sim.actor(NodeId(1)).received, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod queue;
mod simulation;
mod time;

pub use metrics::MessageStats;
pub use queue::{Event, EventPayload};
pub use simulation::{Actor, Context, Message, NodeId, Simulation, TimerTag};
pub use time::SimTime;

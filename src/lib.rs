//! # Curb — trusted and scalable SDN control plane
//!
//! This is the facade crate of the Curb reproduction workspace. It
//! re-exports the public APIs of every subsystem so that applications can
//! depend on a single crate:
//!
//! * [`crypto`] — SHA-256, 256-bit integers and Schnorr signatures.
//! * [`graph`] — weighted graphs, shortest paths and the Internet2 topology.
//! * [`sim`] — deterministic discrete-event network simulator.
//! * [`sdn`] — OpenFlow-style southbound messages and flow tables.
//! * [`consensus`] — PBFT with byzantine fault injection.
//! * [`chain`] — the permissioned blockchain component.
//! * [`assign`] — the controller-assignment optimisation (OP) solver.
//! * [`core`] — the Curb protocol itself (groups, rounds, reassignment).
//! * [`net`] — real TCP (and loopback) transport runtime for the
//!   consensus core.
//! * [`cluster`] — the full multi-group Curb runtime over real
//!   sockets: controller nodes, s-agents, final committee, live
//!   RE-ASS.
//! * [`telemetry`] — unified tracing, metrics and latency histograms.
//!
//! ## Quickstart
//!
//! ```rust
//! use curb::core::{CurbConfig, CurbNetwork};
//! use curb::graph::internet2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = internet2();
//! let config = CurbConfig::default();
//! let mut net = CurbNetwork::new(&topo, config)?;
//! let report = net.run_rounds(3);
//! assert!(report.rounds[0].committed_txs > 0);
//! # Ok(())
//! # }
//! ```

pub use curb_assign as assign;
pub use curb_chain as chain;
pub use curb_cluster as cluster;
pub use curb_consensus as consensus;
pub use curb_core as core;
pub use curb_crypto as crypto;
pub use curb_graph as graph;
pub use curb_net as net;
pub use curb_sdn as sdn;
pub use curb_sim as sim;
pub use curb_telemetry as telemetry;
